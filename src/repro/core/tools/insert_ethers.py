"""insert-ethers: populate the cluster database from DHCP requests (§6.4).

"Insert-ethers monitors syslog messages for DHCP requests from new hosts
and when found, generates a hostname, determines the next free IP
address, binds the hostname and IP address to its Ethernet MAC address,
and inserts this information into the database.  Insert-ethers then
rebuilds service-specific configuration files by running queries against
the database, and restarting the respective services."

Nodes are booted sequentially so that (rack, rank) tracks physical
position — insert-ethers itself just numbers discoveries in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...cluster import Machine
from ...services import SyslogMessage
from ..database import NodeRow
from ..frontend import RocksFrontend

__all__ = ["InsertEthers", "APPLIANCE_BASENAMES"]

#: membership -> hostname prefix, mirroring Table II's naming
APPLIANCE_BASENAMES = {
    "Compute": "compute",
    "NFS Servers": "nfs",
    "Web Servers": "web",
    "Ethernet Switches": "network",
    "Power Units": "power",
}


class InsertEthers:
    """The interactive integration tool, as a syslog subscriber."""

    def __init__(
        self,
        frontend: RocksFrontend,
        membership: str = "Compute",
        cabinet: int = 0,
        on_insert: Optional[Callable[[NodeRow, Machine], None]] = None,
    ):
        if membership not in APPLIANCE_BASENAMES:
            raise ValueError(
                f"unknown membership {membership!r}; "
                f"choose from {sorted(APPLIANCE_BASENAMES)}"
            )
        self.frontend = frontend
        self.membership = membership
        self.cabinet = cabinet
        self.on_insert = on_insert
        self.integrated: list[NodeRow] = []
        self._unsubscribe: Optional[Callable[[], None]] = None

    @property
    def basename(self) -> str:
        return APPLIANCE_BASENAMES[self.membership]

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "InsertEthers":
        """Begin watching syslog (the admin left the tool running)."""
        if self._unsubscribe is None:
            self._unsubscribe = self.frontend.syslog.subscribe(
                self._on_syslog, facility="dhcpd"
            )
        return self

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __enter__(self) -> "InsertEthers":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the integration path ------------------------------------------------------
    def _on_syslog(self, msg: SyslogMessage) -> None:
        if "DHCPDISCOVER from " not in msg.text:
            return
        mac = msg.text.split("DHCPDISCOVER from ")[1].split()[0]
        if self.frontend.db.has_mac(mac):
            return  # known node reinstalling; nothing to do
        self.insert(mac)

    def insert(self, mac: str) -> NodeRow:
        """Adopt one new MAC: name it, give it an IP, regenerate configs."""
        db = self.frontend.db
        rank = db.next_rank(self.cabinet, self.membership)
        name = f"{self.basename}-{self.cabinet}-{rank}"
        try:
            machine: Optional[Machine] = self.frontend.cluster.by_mac(mac)
        except KeyError:
            machine = None
        row = db.add_node(
            name,
            membership=self.membership,
            mac=mac,
            rack=self.cabinet,
            rank=rank,
            cpus=machine.spec.cpu.count if machine else 1,
            arch=machine.spec.cpu.arch.rpm_arch if machine else "i386",
            os_dist=self.frontend.config.dist_name,
            comment=f"{self.membership} node",
        )
        if machine is not None:
            self.frontend.cluster.rename(machine, name)
        self.frontend.regenerate_configs()
        self.integrated.append(row)
        if self.on_insert is not None and machine is not None:
            self.on_insert(row, machine)
        return row
