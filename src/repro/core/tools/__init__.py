"""The NPACI Rocks cluster tools (§6.3-6.4)."""

from .campaign import (
    CampaignReport,
    EscalationPolicy,
    NodeCampaignReport,
    NodeOutcome,
    ReinstallCampaign,
)
from .cluster_fork import (
    cluster_fork,
    cluster_fork_exec,
    cluster_kill,
    frontend_groups,
    targets_from_query,
)
from .crash_cart import CrashCart, NoVideoSignal
from .ekv import EKV_PORT, EkvConsole, EkvUnreachable
from .insert_ethers import APPLIANCE_BASENAMES, InsertEthers
from .scalable_cmds import cluster_lsmod, cluster_ps, cluster_rpm_q, cluster_uptime
from .shoot_node import ShootReport, shoot_node, shoot_nodes
from .upgrade import QueuedReinstallCampaign, queue_cluster_reinstall

__all__ = [
    "CampaignReport",
    "EscalationPolicy",
    "NodeCampaignReport",
    "NodeOutcome",
    "ReinstallCampaign",
    "cluster_fork",
    "cluster_fork_exec",
    "cluster_kill",
    "frontend_groups",
    "targets_from_query",
    "CrashCart",
    "NoVideoSignal",
    "EKV_PORT",
    "EkvConsole",
    "EkvUnreachable",
    "APPLIANCE_BASENAMES",
    "InsertEthers",
    "cluster_lsmod",
    "cluster_ps",
    "cluster_rpm_q",
    "cluster_uptime",
    "ShootReport",
    "shoot_node",
    "shoot_nodes",
    "QueuedReinstallCampaign",
    "queue_cluster_reinstall",
]
