"""Rocks frontend bring-up: one object owning every cluster service.

§7: "Rocks is installed with a floppy and a CD and the frontend
Kickstart file is built from a simple web form...  After the frontend
is installed, the same CD is used to bring up the individual compute
nodes."  §4.1/§5: the frontend runs DHCP, HTTP (kickstart CGI + RPMs),
NIS, NFS, MySQL, PBS and Maui, and holds the rocks-dist tree.

:class:`RocksFrontend` is that machine plus its services, wired to the
simulated cluster hardware.  It is the object the tools (insert-ethers,
shoot-node, cluster-fork) and all benchmarks operate through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster import ClusterHardware, Machine, MachineState
from ..installer import (
    DEFAULT_CALIBRATION,
    InstallCalibration,
    KickstartInstaller,
)
from ..netsim import Environment
from ..rpm import (
    Repository,
    community_packages,
    npaci_packages,
    stock_redhat,
)
from ..scheduler import MauiScheduler, Mpirun, PbsServer, Rexec
from ..services import (
    DhcpServer,
    InstallServer,
    NfsServer,
    NisDomain,
    Syslog,
    UserAccount,
)
from .database import (
    ClusterDatabase,
    DatabaseJournal,
    dhcp_bindings,
    report_dhcpd,
    report_hosts,
    report_pbs_nodes,
)
from .distribution import Distribution, RocksDist
from .kickstart import (
    KickstartCgi,
    KickstartGenerator,
    default_graph,
    default_node_files,
)

__all__ = ["RocksFrontend", "FrontendConfig"]

#: Aggregate HTTP efficiency for the install server.  Per-stream protocol
#: overhead is modelled by the installer's single_stream_rate cap
#: (7.5 MB/s, the §6.3 micro-benchmark); with many concurrent streams
#: pipelining fills the wire, so the aggregate service cap is the NIC.
INSTALL_HTTP_EFFICIENCY = 1.0


@dataclass
class FrontendConfig:
    """The §7 'simple web form' that builds the frontend kickstart."""

    name: str = "frontend-0"
    ip: str = "10.1.1.1"
    dist_name: str = "rocks-dist"
    dist_version: str = "2.2.1"
    arch: str = "i386"
    nis_domain: str = "rocks"
    rootpw: str = "--iscrypted unset"
    machine_model: str = "pIII-733-dual"
    calibration: InstallCalibration = field(default_factory=lambda: DEFAULT_CALIBRATION)


class RocksFrontend:
    """The frontend machine and every service it runs."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterHardware,
        config: Optional[FrontendConfig] = None,
        stock: Optional[Repository] = None,
        updates: Optional[Repository] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.config = config or FrontendConfig()
        cfg = self.config

        # -- the machine itself -------------------------------------------------
        self.machine: Machine = cluster.add_machine(
            cfg.machine_model, name=cfg.name
        )

        # -- the database (created when the frontend installs, §6.4) --------------
        self.db = ClusterDatabase()
        self.db.add_node(
            cfg.name,
            membership="Frontend",
            mac=self.machine.mac,
            ip=cfg.ip,
            cpus=self.machine.spec.cpu.count,
            arch=cfg.arch,
            os_dist=cfg.dist_name,
            comment="Gateway machine",
        )
        self.db.set_global("Kickstart", "PublicHostname", cfg.name)

        # -- the distribution (rocks-dist mirror + dist at install time) -----------
        self.rocks_dist = RocksDist.standard(
            stock if stock is not None else stock_redhat(arch=cfg.arch),
            updates=updates,
            contrib=community_packages(cfg.arch),
            local=npaci_packages(cfg.dist_version),
            name=cfg.dist_name,
            arch=cfg.arch,
        )
        self.distributions: dict[str, Distribution] = {}
        dist = self.rocks_dist.dist()
        self.distributions[dist.name] = dist

        # -- services ----------------------------------------------------------------
        self.syslog = Syslog(env)
        self.dhcp = DhcpServer(
            env, self.syslog, server_host=self.machine.mac, next_server=cfg.name
        )
        self.install_server = InstallServer(
            env,
            cluster.network,
            self.machine.mac,
            efficiency=INSTALL_HTTP_EFFICIENCY,
        )
        self.nis = NisDomain(cfg.nis_domain)
        self.nfs = NfsServer(cfg.name)
        self.nfs.export("/export/home")
        self.pbs = PbsServer(env, resolve=cluster.find)
        self.maui = MauiScheduler(env, self.pbs)
        self.rexec = Rexec(env, cluster.find)
        self.mpirun = Mpirun(
            self.rexec, lambda: [r.name for r in self.db.compute_nodes()]
        )

        # -- kickstart generation ----------------------------------------------------
        self.generator = KickstartGenerator(
            default_graph(),
            default_node_files(),
            self._resolve_dist,
            install_url_base=f"http://{cfg.name}/install",
            # Each distribution's own build directory drives its
            # kickstarts (§6.2.3): developer dists bring their own XML.
            xml_resolver=self._resolve_xml,
        )
        self.cgi = KickstartCgi(self.db, self.generator)
        self.install_server.register_kickstart_cgi(self.cgi)
        self.installer = KickstartInstaller(
            self.dhcp,
            self.install_server,
            calibration=cfg.calibration,
        )

        self.hosts_file = ""
        self.config_regenerations = 0
        #: Resilience state: a DatabaseJournal once enable_journal() ran,
        #: and a flag marking the DB as crashed-and-unrecovered.
        self.journal: Optional[DatabaseJournal] = None
        self.db_lost = False
        self.recovered_snapshot: Optional[str] = None
        self._publish(dist)
        self.regenerate_configs()

    # -- distribution management -------------------------------------------------------
    def _resolve_dist(self, name: str) -> Repository:
        try:
            return self.distributions[name].repository
        except KeyError:
            raise KeyError(
                f"no distribution named {name!r} on {self.config.name}; "
                f"have {sorted(self.distributions)}"
            ) from None

    def _resolve_xml(self, name: str):
        dist = self.distributions[name]  # KeyError -> generator default
        return dist.graph, dist.node_files

    def _publish(self, dist: Distribution) -> None:
        self.install_server.publish_packages(dist.name, dist.repository)

    def add_distribution(self, dist: Distribution) -> None:
        """Register an additional (e.g. developer) distribution (§6.2.3)."""
        self.distributions[dist.name] = dist
        self._publish(dist)

    def rebuild_distribution(self) -> Distribution:
        """Re-run rocks-dist (e.g. after new updates were mirrored)."""
        dist = self.rocks_dist.dist(
            graph=self.generator.graph, node_files=self.generator.node_files
        )
        self.install_server.unpublish_distribution(dist.name)
        self.distributions[dist.name] = dist
        self._publish(dist)
        return dist

    def add_update_source(self, updates: Repository) -> None:
        self.rocks_dist.add_source(updates)

    # -- frontend installation ------------------------------------------------------------
    def install_from_cd(self) -> None:
        """Lay the frontend's own OS down from the CD and boot it.

        The frontend cannot network-install from itself; the CD medium
        carries the packages, so this is a local, synchronous install.
        """
        profile = self.generator.profile(
            "frontend", self.config.arch, self.config.dist_name
        )
        self.machine.rpmdb.wipe()
        for pkg in profile.packages:
            self.machine.rpmdb.install(pkg, nodeps=True)
        kernel = self.machine.rpmdb.query("kernel")
        if kernel is not None:
            self.machine.kernel_version = f"{kernel.version}-{kernel.release}"
        from ..installer import apply_plan

        apply_plan(self.machine, profile.partitions)
        self.machine.ip = self.config.ip
        self.machine.power_on()
        self.env.run(until=self.machine.wait_for_state(MachineState.UP))
        # PBS and Maui "are automatically started and a default queue is
        # defined" (§4.1).
        self.start_services()

    def start_services(self) -> None:
        for svc in (self.dhcp, self.install_server, self.nis, self.nfs):
            svc.start()
        self.maui.start()

    # -- crash / recovery --------------------------------------------------
    def enable_journal(self, path: Optional[str] = None) -> DatabaseJournal:
        """Attach a write-ahead journal (with a checkpoint of current state)."""
        if self.journal is None:
            self.journal = DatabaseJournal(path)
            self.db.attach_journal(self.journal)
        return self.journal

    def crash(self, lose_database: bool = True) -> None:
        """The frontend box dies: services fault and the live DB is wiped.

        The journal (stable storage) survives; :meth:`recover_database`
        replays it.  Service restarts are the supervisor's job.
        """
        for svc in (self.dhcp, self.install_server, self.nfs):
            if not svc.faulted:
                svc.fail()
        if lose_database:
            self.db.lose_state()
            self.db_lost = True
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.event(
                "frontend-crash",
                self.config.name,
                database_lost=lose_database,
            )

    def recover_database(self) -> int:
        """Replay the journal into the wiped DB; returns records applied.

        Stores the post-replay canonical dump in ``recovered_snapshot``
        (captured *before* regenerate_configs touches anything) so tests
        can assert byte-identity against the pre-crash state.
        """
        if not self.db_lost:
            return 0
        if self.journal is None:
            raise RuntimeError(
                "database lost and no journal attached; state is unrecoverable"
            )
        tracer = self.env.tracer
        span = (
            tracer.span("journal-replay", self.config.name)
            if tracer.enabled
            else None
        )
        applied = self.journal.replay_into(self.db)
        self.recovered_snapshot = self.db.snapshot()
        self.db_lost = False
        if span is not None:
            span.end(outcome="ok", records=applied)
        self.regenerate_configs()
        return applied

    # -- node adoption ----------------------------------------------------------------------
    def adopt(self, machine: Machine) -> None:
        """Point a piece of hardware at this frontend for installation."""
        self.installer.attach(machine)

    def regenerate_configs(self) -> None:
        """Rebuild every database-derived config and restart services (§6.4)."""
        self.dhcp.load_bindings(dhcp_bindings(self.db), report_dhcpd(self.db))
        self.dhcp.restart()
        self.hosts_file = report_hosts(self.db)
        pbs_nodes = report_pbs_nodes(self.db)
        registered = set(self.pbs.nodes())
        for line in pbs_nodes.splitlines():
            name = line.split()[0]
            if name not in registered:
                self.pbs.register_node(name)
        self.config_regenerations += 1

    # -- users -----------------------------------------------------------------------------------
    def add_user(self, username: str, uid: int) -> UserAccount:
        """Create an account: NIS entry + NFS home directory (§5)."""
        account = UserAccount(username, uid, f"/export/home/{username}")
        self.nis.add_user(account)
        return account

    # -- views ------------------------------------------------------------------------------------
    def compute_machines(self) -> list[Machine]:
        out = []
        for row in self.db.compute_nodes():
            if row.mac is not None:
                try:
                    out.append(self.cluster.by_mac(row.mac))
                except KeyError:
                    pass
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RocksFrontend({self.config.name!r}, "
            f"{len(self.db.nodes())} nodes, "
            f"dists={sorted(self.distributions)})"
        )
