"""Deterministic discrete-event simulation engine.

This is the clock that everything else in the reproduction runs on: node
boot sequences, package downloads, service restarts, and scheduler ticks
are all processes scheduled here.  The design is a deliberately small
subset of the SimPy process model:

* an :class:`Environment` owns a priority queue of events,
* a :class:`Process` wraps a Python generator; the generator *yields*
  events and is resumed when they trigger,
* :class:`Timeout` is an event that triggers after simulated seconds,
* processes may be interrupted (:meth:`Process.interrupt`), which raises
  :class:`Interrupt` inside the generator — this is how a hard power
  cycle kills a running installation.

Determinism matters: benchmark tables must be reproducible run-to-run,
so ties in the event queue are broken by a monotonically increasing
sequence number, never by object identity.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry import NULL_TRACER

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "set_ambient_sanitize",
    "set_ambient_profile",
]


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Raised inside a process generator when :meth:`Process.interrupt` is called.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (for example ``"hard power cycle"``).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` moves them to
    *triggered* and schedules their callbacks to run at the current
    simulation time.  A process that yields a pending event is suspended
    until the event triggers.
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_triggered", "_scheduled",
        "_cancelled",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if ev.triggered and not ev._scheduled:
                # Already dispatched: its occurrence is in the past.
                self._on_child(ev)
            else:
                # Pending (including a Timeout, which is born triggered
                # but dispatches at now+delay): observe it at dispatch,
                # like every other callback.
                ev.callbacks.append(self._on_child)
        if not self._triggered:
            self._check(initial=True)

    def _on_child(self, ev: Event) -> None:
        self._n_done += 1
        if not ev._ok and not self._triggered:
            self.fail(ev._value)
            return
        if not self._triggered:
            self._check(initial=False)

    def _check(self, initial: bool) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _detach_children(self) -> None:
        """Stop observing children (the waiter was interrupted away).

        Without this an orphaned condition keeps its ``_on_child``
        callbacks attached: the children's later dispatches still tick
        ``_n_done`` and can trigger the condition long after anyone
        cared — ghost events a trace would faithfully record.
        """
        for ev in self.events:
            try:
                ev.callbacks.remove(self._on_child)
            except ValueError:
                pass


class AllOf(_Condition):
    """Triggers once *all* child events have triggered."""

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if self._n_done == len(self.events):
            self.succeed(tuple(ev._value for ev in self.events))


class AnyOf(_Condition):
    """Triggers once *any* child event has triggered.

    An **empty** AnyOf triggers immediately (value ``()``), mirroring
    ``AllOf([])`` and SimPy's vacuous-condition semantics.  The
    alternative — an event that can never trigger — silently deadlocks
    any process that yields it, which is how ``env.any_of([])`` in a
    dynamically built wait-set used to hang whole scenarios.
    """

    __slots__ = ()

    def _check(self, initial: bool) -> None:
        if not self.events:
            self.succeed(())
            return
        if self._n_done >= 1:
            for ev in self.events:
                # Only a dispatched child counts as having occurred; an
                # undispatched Timeout sibling is still in the future.
                if ev.triggered and not ev._scheduled:
                    self.succeed(ev._value)
                    return


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process: wraps a generator that yields events.

    The Process is itself an Event that triggers (with the generator's
    return value) when the generator finishes — so processes can wait on
    other processes.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process generator.

        Interrupting an already-finished process is an error, as is a
        process interrupting itself.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        self._interrupts.append(exc)
        # Detach from whatever event we were waiting on and wake up now.
        target = self._waiting_on
        if target is not None and not target._triggered:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if isinstance(target, _Condition):
                # The condition has no waiter left; unhook it from its
                # children so their later dispatches cannot fire it.
                target._detach_children()
        self._waiting_on = None
        wake = Event(self.env)
        wake.callbacks.append(self._resume)
        wake.succeed(None)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self.env._active_process = self
        try:
            if self._interrupts:
                exc = self._interrupts.pop(0)
                nxt = self.generator.throw(exc)
            elif event._ok:
                nxt = self.generator.send(event._value)
            else:
                nxt = self.generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt:
            # Generator let the interrupt escape: treat as abnormal end.
            self.env._active_process = None
            self.succeed(None)
            return
        except BaseException as err:
            self.env._active_process = None
            self.fail(err)
            return
        self.env._active_process = None
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes must yield events"
            )
        if nxt.env is not self.env:
            raise SimulationError("process yielded an event from a different environment")
        if self._interrupts:
            # An interrupt arrived while we were deciding what to wait on;
            # deliver it immediately instead of blocking.
            wake = Event(self.env)
            wake.callbacks.append(self._resume)
            wake.succeed(None)
            return
        self._waiting_on = nxt
        if nxt._triggered:
            if nxt._scheduled:
                nxt.callbacks.append(self._resume)
            else:  # already dispatched: resume via a fresh immediate event
                wake = Event(self.env)
                wake.callbacks.append(self._resume)
                wake.succeed(nxt._value) if nxt._ok else wake.fail(nxt._value)
        else:
            nxt.callbacks.append(self._resume)


#: ambient sanitize options (see :func:`set_ambient_sanitize`).  ``None``
#: means plain environments — the only value with hot-path code attached.
_AMBIENT_SANITIZE: Any = None

#: ambient profile options (see :func:`set_ambient_profile`); same
#: construction-time swap, to :class:`repro.netsim.profiler.ProfiledEnvironment`.
_AMBIENT_PROFILE: Any = None


def set_ambient_sanitize(options: Any) -> Any:
    """Set the sanitize options newly built Environments default to.

    This is the hook `repro sanitize` uses to reach environments that
    scenarios construct internally (``build_cluster``, ``run_storm``):
    with an ambient option set, every ``Environment()`` created without
    an explicit ``sanitize=`` argument becomes a sanitized environment.
    Returns the previous value so callers can restore it; the
    :func:`repro.analysis.sanitizer.sanitized` context manager does the
    set/restore pairing.
    """
    global _AMBIENT_SANITIZE
    previous = _AMBIENT_SANITIZE
    _AMBIENT_SANITIZE = options
    return previous


def set_ambient_profile(options: Any) -> Any:
    """Set the profile options newly built Environments default to.

    The engine self-profiler's ambient hook (see
    :mod:`repro.netsim.profiler`): with one set, every plain
    ``Environment()`` becomes a ``ProfiledEnvironment``.  An ambient
    *sanitize* option takes precedence — the sanitizer's verdict relies
    on owning the dispatch loop.  Returns the previous value; the
    :func:`repro.netsim.profiler.profiled` context manager does the
    set/restore pairing.
    """
    global _AMBIENT_PROFILE
    previous = _AMBIENT_PROFILE
    _AMBIENT_PROFILE = options
    return previous


class Environment:
    """Holds simulated time and the pending event queue.

    ``sanitize`` opts one environment into the schedule-perturbation
    sanitizer (see :mod:`repro.analysis.sanitizer`): pass a
    ``SanitizeOptions`` and the constructor returns a
    ``SanitizedEnvironment`` whose tie-breaks among same-timestamp
    events are seeded-randomly perturbed and whose dispatches are
    logged.  The default (``None``, unless an ambient option is set)
    builds this class unchanged — the sanitizer adds **zero** code to
    the default scheduling and dispatch paths.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_process",
        "_n_cancelled",
        "_slots",
        "events_dispatched",
        "tracer",
    )

    def __new__(cls, initial_time: float = 0.0, sanitize: Any = None,
                profile: Any = None):
        if cls is Environment:
            options = sanitize if sanitize is not None else _AMBIENT_SANITIZE
            if options is not None:
                from ..analysis.sanitizer import SanitizedEnvironment

                return object.__new__(SanitizedEnvironment)
            if profile is not None or _AMBIENT_PROFILE is not None:
                from .profiler import ProfiledEnvironment

                return object.__new__(ProfiledEnvironment)
        return object.__new__(cls)

    def __init__(self, initial_time: float = 0.0, sanitize: Any = None):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self._n_cancelled = 0
        #: shared timer buckets, keyed by absolute due time — see
        #: :meth:`slotted_timeout`
        self._slots: dict[float, Timeout] = {}
        #: events dispatched (cancelled entries excluded); benchmarks read
        #: this to report events/sec
        self.events_dispatched = 0
        #: telemetry sink; the no-op default costs nothing (see
        #: :mod:`repro.telemetry` — attach a Tracer to opt in)
        self.tracer = NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def slotted_timeout(self, delay: float) -> Timeout:
        """A shared timer: waiters due at the same instant share one event.

        Thousands of identical per-node timers (heartbeats, DHCP retries,
        monitor ticks) otherwise each cost a heap entry per period.  All
        callers asking to wake at the same absolute time get the *same*
        Timeout, collapsing N heap entries into one; each waiter just
        appends its callback.  The value is always ``None``.

        Do **not** ``cancel()`` a slotted timeout: it is shared, and
        cancelling it would silently defuse every co-waiter.  Processes
        waiting on one may still be interrupted normally (interruption
        detaches only that process's callback).
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        due = self._now + delay
        slot = self._slots.get(due)
        if slot is None or not slot._scheduled or slot._cancelled:
            slot = Timeout(self, delay)
            self._slots[due] = slot
            # First callback: retire the bucket so a later request for the
            # same due time (possible only with delay == 0 mid-dispatch)
            # gets a fresh, still-pending slot.
            slot.callbacks.append(lambda _ev, due=due: self._slots.pop(due, None))
        return slot

    def timeout_batch(self, delays: Iterable[float], value: Any = None) -> list[Timeout]:
        """Create many timeouts with one bulk heap operation.

        Scheduling k timers one by one costs k sifts of an ever-growing
        heap; batching appends them all and re-heapifies once, which is
        what mass per-node bootstrap (10k staggered first wakeups) wants.
        Semantically identical to ``[env.timeout(d) for d in delays]``,
        including the order in which sequence numbers are assigned.
        """
        out: list[Timeout] = []
        entries: list[tuple[float, int, Event]] = []
        now = self._now
        for delay in delays:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            tout = Timeout.__new__(Timeout)
            Event.__init__(tout, self)
            tout.delay = delay
            tout._triggered = True
            tout._value = value
            tout._scheduled = True
            entries.append((now + delay, next(self._seq), tout))
            out.append(tout)
        queue = self._queue
        if len(entries) * 4 >= len(queue):
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            for entry in entries:
                heapq.heappush(queue, entry)
        return out

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        event._scheduled = True
        if event._cancelled:
            # Triggering an event that was cancelled while pending pushes a
            # dead entry; count it so compaction accounting stays balanced.
            self._n_cancelled += 1
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def cancel(self, event: Event) -> None:
        """Defuse an event: its callbacks will never run.

        A cancelled event is marked even when it was never scheduled, so
        ``run(until=event)`` can diagnose an unawaitable stop event
        instead of draining the queue.  Removal from a binary heap is
        O(n), so scheduled entries are cancelled lazily — marked and
        skipped at dispatch — with a periodic compaction once cancelled
        entries dominate the queue.  This is what keeps wakeup-heavy
        workloads (flow recompute storms under fault flapping) from
        growing the queue without bound.
        """
        event.callbacks.clear()
        if event._cancelled:
            return
        event._cancelled = True
        if event._scheduled:
            self._n_cancelled += 1
            if self._n_cancelled > 64 and self._n_cancelled * 2 > len(self._queue):
                self._queue = [
                    entry for entry in self._queue if not entry[2]._cancelled
                ]
                heapq.heapify(self._queue)
                self._n_cancelled = 0

    def step(self) -> None:
        """Dispatch the single next event."""
        if not self._queue:
            raise SimulationError("no more events to step through")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        if event._cancelled:
            self._n_cancelled -= 1
            event._scheduled = False
            return
        callbacks, event.callbacks = event.callbacks, []
        event._scheduled = False
        self.events_dispatched += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event triggers.

        ``until`` may be a simulated-time deadline (float) or an Event; when
        an Event is given, run() returns its value (raising its exception if
        it failed).  Awaiting a cancelled event raises
        :class:`SimulationError` immediately — its callbacks are gone, so
        it can never trigger, and draining the whole queue first would
        only produce a misleading "ran out of events" error.

        The dispatch loop is inlined rather than delegating to
        :meth:`step`: at 10k-node scale the per-event call overhead is
        measurable, and this loop is the hottest path in the simulator.
        ``self._queue`` is re-read every iteration because a callback may
        trigger compaction in :meth:`cancel`, which rebinds it.
        """
        heappop = heapq.heappop
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._triggered:
                if stop_event._cancelled:
                    raise SimulationError(
                        "run(until=...) awaits a cancelled event, which can never trigger"
                    )
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event triggered"
                    )
                when, _, event = heappop(self._queue)
                self._now = when
                if event._cancelled:
                    self._n_cancelled -= 1
                    event._scheduled = False
                    continue
                callbacks, event.callbacks = event.callbacks, []
                event._scheduled = False
                self.events_dispatched += 1
                for cb in callbacks:
                    cb(event)
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        while self._queue:
            if self._queue[0][0] > deadline:
                break
            when, _, event = heappop(self._queue)
            self._now = when
            if event._cancelled:
                self._n_cancelled -= 1
                event._scheduled = False
                continue
            callbacks, event.callbacks = event.callbacks, []
            event._scheduled = False
            self.events_dispatched += 1
            for cb in callbacks:
                cb(event)
        if deadline != float("inf"):
            self._now = max(self._now, deadline)
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
