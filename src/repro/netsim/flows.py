"""Fluid-flow bandwidth model with max-min fair sharing.

Package downloads during a Kickstart reinstall are modelled as *flows*:
a number of bytes moving along a path of capacity-limited links.  When
several nodes reinstall concurrently their flows share the install
server's uplink, and the classic **progressive-filling max-min fair**
allocation decides who gets what.  This is the mechanism behind Table I
of the paper: with few nodes every flow gets its full demand, and past
the server's saturation point (~7 concurrent full-speed installs on
100 Mbit) per-flow rates drop and reinstall times stretch.

Rates are recomputed **incrementally**: a flow start, finish, cancel or
capacity change marks its links dirty, and only the bottleneck
*components* reachable from the dirty set (flows transitively sharing a
link) are credited and refilled — max-min allocation decomposes exactly
along those components, so untouched groups keep their rates.  Between
recomputations every flow progresses linearly, and the earliest
completion across all components is tracked in a lazy min-heap instead
of an O(flows) scan, so completion times can still be scheduled exactly
and the simulation stays deterministic at 10k-node scale.
"""

from __future__ import annotations

import heapq
import itertools
import math
from operator import attrgetter
from typing import Any, Iterable, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Link", "Flow", "FlowNetwork"]

#: Rates below this (bytes/sec) are treated as zero to avoid float dust.
_EPS = 1e-9

_flow_seq = attrgetter("_seq")


class Link:
    """A capacity-limited, unidirectional network resource.

    ``capacity`` is in bytes/second.  A link with ``capacity=None`` is
    unconstrained (useful for switch backplanes we do not model).
    """

    __slots__ = ("name", "capacity", "bytes_carried", "_flows")

    def __init__(self, name: str, capacity: Optional[float]):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity!r}")
        self.name = name
        self.capacity = capacity
        #: cumulative payload bytes this link has carried (flows credit it
        #: as they progress; multicast datagrams add their payload too) —
        #: the per-NIC counter monitoring agents sample.
        self.bytes_carried = 0.0
        # Insertion-ordered (dict-as-set): iteration order, and therefore
        # every float sum and event seq derived from it, is deterministic.
        self._flows: dict["Flow", None] = {}

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def utilization(self) -> float:
        """Current fraction of capacity in use, always within [0, 1].

        Infinite-rate flows (allocated while their whole path was
        unconstrained, before this link regained a finite capacity) are
        excluded, and transient oversubscription — a capacity degraded
        under live flows, before the next ``recompute()`` — clamps to 1.
        """
        if self.capacity is None:
            return 0.0
        # Explicit loop, no genexpr/isinf frames: monitoring agents call
        # this for every NIC on every sample tick.
        inf = math.inf
        used = 0.0
        for f in self._flows:
            rate = f.rate
            if rate != inf:
                used += rate
        return min(used / self.capacity, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else f"{self.capacity:.0f}B/s"
        return f"Link({self.name!r}, {cap}, {len(self._flows)} flows)"


class Flow:
    """An in-flight transfer of ``size`` bytes along ``path``.

    ``max_rate`` caps the flow below its fair share — this models a
    receiver that cannot consume faster than it installs packages.
    ``done`` is an engine Event that triggers when the last byte lands.
    """

    __slots__ = (
        "network",
        "path",
        "size",
        "remaining",
        "max_rate",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "label",
        "_completion_seq",
        "_span",
        "_seq",
        "_last_credit",
        "_eta_gen",
    )

    def __init__(
        self,
        network: "FlowNetwork",
        path: tuple[Link, ...],
        size: float,
        max_rate: Optional[float],
        label: str,
    ):
        self.network = network
        self.path = path
        self.size = float(size)
        self.remaining = float(size)
        self.max_rate = max_rate
        self.rate = 0.0
        self.done: Event = network.env.event()
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self.label = label
        self._completion_seq = 0
        self._span = None  # telemetry span, when tracing is enabled
        #: start order, used to sort component members deterministically
        self._seq = next(network._flow_seq_counter)
        #: per-flow credit anchor: the instant ``remaining`` was last true
        self._last_credit = network.env.now
        #: generation counter invalidating stale completion-heap entries
        self._eta_gen = 0

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.network.env.now
        return end - self.started_at

    def cancel(self) -> None:
        """Abort the transfer; ``done`` fails with :class:`TransferAborted`."""
        self.network._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flow({self.label!r}, {self.remaining:.0f}/{self.size:.0f}B, "
            f"{self.rate:.0f}B/s)"
        )


class TransferAborted(Exception):
    """The flow was cancelled before completion (e.g. node power-cycled)."""


class FlowNetwork:
    """Tracks active flows and keeps their max-min fair rates current.

    ``incremental=True`` (the default) recomputes only the bottleneck
    components touched by a change; ``incremental=False`` refills every
    component on every change — the legacy full recompute, kept for
    differential testing.  Crediting, completion sweeps and wakeup
    scheduling follow the exact same code path in both modes, so the two
    must produce bit-identical rates and completion times.
    """

    __slots__ = (
        "env",
        "_incremental",
        "_flows",
        "_flow_seq_counter",
        "_dirty",
        "_dirty_all",
        "_eta_heap",
        "_wakeup",
        "_wakeup_time",
        "_wakeup_gen",
        "_bytes_moved",
        "_util_traced",
        "_epoch",
    )

    def __init__(self, env: Environment, incremental: bool = True):
        self.env = env
        self._incremental = incremental
        # Construction-time only: a profiled environment wants refill
        # counts, so hand it this network (plain envs have no .profile).
        profiler = getattr(env, "profile", None)
        if profiler is not None:
            profiler.note_network(self)
        # dict-as-set: insertion-ordered, so rate credits and completion
        # seqs are assigned in a run-to-run deterministic order.
        self._flows: dict[Flow, None] = {}
        self._flow_seq_counter = itertools.count()
        # Links whose flow set or capacity changed since the last
        # reallocation (dict-as-set, marked in deterministic op order).
        self._dirty: dict[Link, None] = {}
        self._dirty_all = False
        # Lazy min-heap of (eta, flow_seq, eta_gen, flow, rel, anchor):
        # the next completion instant per live flow.  Entries whose gen
        # no longer matches flow._eta_gen are skipped at pop time.
        self._eta_heap: list[tuple[float, int, int, Flow, float, float]] = []
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf
        self._wakeup_gen = 0
        self._bytes_moved = 0.0
        self._util_traced: dict[Link, float] = {}
        # Bumped on every reallocation; detects reentrant flow ops from
        # synchronous completion callbacks.
        self._epoch = 0

    # -- public API -------------------------------------------------------
    def transfer(
        self,
        path: Iterable[Link],
        size: float,
        max_rate: Optional[float] = None,
        label: str = "",
        parent=None,
    ) -> Flow:
        """Start a transfer; returns the :class:`Flow` (wait on ``flow.done``).

        ``parent`` (a tracer span) parents the flow's span, threading
        trace context from whatever caused the transfer (an HTTP GET, a
        monitoring push) down to the wire.
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size!r}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate!r}")
        flow = Flow(self, tuple(path), size, max_rate, label)
        tracer = self.env.tracer
        if tracer.enabled:
            # The narrowest link on the path is the flow's best-case
            # bottleneck — what the critical-path analyzer names when a
            # transfer's time is attributed to "link X saturation".
            bottleneck = min(
                flow.path,
                key=lambda link: (
                    math.inf if link.capacity is None else link.capacity
                ),
                default=None,
            )
            flow._span = tracer.span(
                "flow",
                label or "flow",
                parent=parent,
                size=float(size),
                links=[link.name for link in flow.path],
                bottleneck=bottleneck.name if bottleneck is not None else "",
            )
        if size == 0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            if flow._span is not None:
                flow._span.end(outcome="done")
                flow._span = None
            return flow
        self._flows[flow] = None
        dirty = self._dirty
        for link in flow.path:
            link._flows[flow] = None
            dirty[link] = None
        self._reallocate()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def reallocations(self) -> int:
        """Fair-share refills performed so far (the engine self-profiler
        reports this as a hot-path health number)."""
        return self._epoch

    def flows_through(self, link: Link) -> list[Flow]:
        """Snapshot of the in-flight flows whose path crosses ``link``.

        Public accessor so callers (e.g. ``HttpServer.abort_transfers``)
        can find and cancel a link's flows without touching internals;
        returns a list so cancelling while iterating is safe.  Served
        from the link's own insertion-ordered index — O(flows on link),
        not O(all flows).
        """
        return list(link._flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes delivered across all completed and in-flight flows."""
        self._credit(list(self._flows))
        return self._bytes_moved

    def recompute(self, links: Optional[Iterable[Link]] = None) -> None:
        """Re-run fair sharing after an exogenous capacity change.

        Link capacities are read only when rates are allocated, so fault
        injection (degrading a NIC mid-transfer) must credit progress at
        the old rates and then redistribute.  Pass the changed ``links``
        to confine the recomputation to their components; with no
        argument every component is refreshed (the safe legacy default).
        """
        if links is None:
            self._dirty_all = True
        else:
            dirty = self._dirty
            for link in links:
                dirty[link] = None
        self._reallocate()

    # -- internals ----------------------------------------------------------
    def _cancel(self, flow: Flow) -> None:
        if flow not in self._flows:
            return
        # Credit the flow's whole component (the flow included) at the
        # cancellation instant, before detaching it.
        dirty = self._dirty
        for link in flow.path:
            dirty[link] = None
        affected, _comps = self._closure()
        self._credit(affected)
        self._detach(flow)
        flow.finished_at = self.env.now
        if flow._span is not None:
            flow._span.end(outcome="cancelled", remaining=flow.remaining)
            flow._span = None
        flow.done.fail(TransferAborted(flow.label))
        self._reallocate()

    def _detach(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link._flows.pop(flow, None)
        flow._eta_gen += 1  # invalidate any pending completion-heap entry

    def _credit(self, flows: Iterable[Flow]) -> None:
        """Credit ``flows`` with bytes moved since each one's last credit.

        Every flow carries its own anchor (``_last_credit``).  A
        reallocation credits every member of each touched component, so
        within a component the anchors advance in lockstep and the float
        arithmetic below is unchanged from the legacy global advance.
        """
        now = self.env._now
        bytes_moved = self._bytes_moved
        for flow in flows:
            dt = now - flow._last_credit
            if dt < 0:
                raise SimulationError("simulation time went backwards")
            if dt == 0:
                continue
            flow._last_credit = now
            rate = flow.rate
            if math.isinf(rate):
                moved = flow.remaining
            else:
                moved = min(flow.remaining, rate * dt)
            flow.remaining -= moved
            bytes_moved += moved
            # Snap float dust to done: less than a nanosecond of work
            # left must not schedule another (zero-delay) wakeup.
            if flow.remaining <= _EPS + rate * 1e-9:
                bytes_moved += flow.remaining
                moved += flow.remaining
                flow.remaining = 0.0
            if moved:
                for link in flow.path:
                    link.bytes_carried += moved
        self._bytes_moved = bytes_moved

    def _closure(self) -> tuple[list[Flow], list[list[Flow]]]:
        """Bottleneck components reachable from the dirty link set.

        Two flows are connected when they share a link, and max-min fair
        allocation decomposes exactly along the resulting components: a
        change can only alter rates inside a component containing a
        dirtied link.  Returns ``(affected, components)`` where
        ``affected`` is every dirty-closure flow in start order (the
        order credits are applied) and ``components`` are the flow
        groups to refill.  In full (non-incremental) mode the remaining,
        untouched components are appended to ``components`` too — their
        refill reproduces the same rates from the same inputs — while
        ``affected`` is identical in both modes, keeping crediting
        cadence mode-independent.

        The sets below are membership filters only, never iterated; all
        iteration is over insertion-ordered dicts and lists, so closure
        discovery is deterministic.
        """
        seen_flows: set[Flow] = set()
        seen_links: set[Link] = set()
        comps: list[list[Flow]] = []

        def explore(seed: Flow) -> list[Flow]:
            comp = [seed]
            seen_flows.add(seed)
            stack = [seed]
            while stack:
                flow = stack.pop()
                for link in flow.path:
                    if link in seen_links:
                        continue
                    seen_links.add(link)
                    for other in link._flows:
                        if other not in seen_flows:
                            seen_flows.add(other)
                            comp.append(other)
                            stack.append(other)
            comp.sort(key=_flow_seq)
            comps.append(comp)
            return comp

        affected: list[Flow] = []
        if self._dirty_all:
            for flow in self._flows:
                if flow not in seen_flows:
                    affected.extend(explore(flow))
        else:
            for link in self._dirty:
                if link in seen_links:
                    continue
                # The first explore() below walks through this link and
                # absorbs all of its flows into one component.
                for flow in link._flows:
                    if flow not in seen_flows:
                        affected.extend(explore(flow))
        if not self._incremental:
            # Full mode: also refill every untouched component (producing
            # identical rates from identical inputs) — but do not credit
            # them, so both modes credit at the exact same instants.
            for flow in self._flows:
                if flow not in seen_flows:
                    explore(flow)
        affected.sort(key=_flow_seq)
        return affected, comps

    def _reallocate(self, _wakeup_sweep: bool = False) -> None:
        """Incremental max-min fair recomputation.

        Credits and refills only the components reachable from the dirty
        link set, completes anything that drained, refreshes those
        flows' completion-heap entries, and arranges the next wakeup.
        Untouched bottleneck groups keep their rates.
        """
        self._epoch += 1
        epoch = self._epoch
        affected, comps = self._closure()
        self._dirty.clear()
        self._dirty_all = False
        if not affected and not comps:
            self._schedule_wakeup()
            return
        self._credit(affected)
        flows = self._flows
        if _wakeup_sweep:
            # Wakeup sweeps use the legacy rich predicate: anything with
            # under a nanosecond of work left (or on an infinite-rate
            # path) completes now instead of scheduling a dust wakeup.
            finished = [
                f
                for f in affected
                if f.remaining <= _EPS + f.rate * 1e-9 or math.isinf(f.rate)
            ]
        else:
            finished = [f for f in affected if f.remaining <= _EPS]
        for f in finished:
            if f in flows:
                self._complete(f)
        if self._epoch != epoch:
            # A completion callback re-entered (started or cancelled a
            # transfer synchronously), so our component snapshots are
            # stale: rebuild membership from the live flow set and redo
            # the fill.  Credits are all at `now` already, so the retry
            # only recomputes rates.
            dirty = self._dirty
            for f in affected:
                if f in flows:
                    for link in f.path:
                        dirty[link] = None
            self._reallocate()
            return
        filled_any = False
        for comp in comps:
            # Membership is re-checked against the live flow set *after*
            # completions ran: a rate must never be assigned to a
            # detached flow, nor a just-started one skipped.
            active = [f for f in comp if f in flows and f.remaining > _EPS]
            if active:
                filled_any = True
                self._fill(active)
        if filled_any and self.env.tracer.enabled:
            self._record_utilization()
        # Refresh completion etas for everything we credited.
        now = self.env._now
        heap = self._eta_heap
        for f in affected:
            if f not in flows:
                continue
            f._eta_gen += 1
            rate = f.rate
            if rate > _EPS:
                rel = f.remaining / rate
                if rel < 0.0:
                    rel = 0.0
                heapq.heappush(heap, (now + rel, f._seq, f._eta_gen, f, rel, now))
        self._schedule_wakeup()

    def _fill(self, active: list[Flow]) -> None:
        """Progressive filling of one bottleneck component.

        All unconstrained flows are raised in lockstep until a link
        saturates or a flow hits its own ``max_rate``; those flows
        freeze and the rest keep filling.  ``active`` is one whole
        component in flow-start order, so this arithmetic is
        bit-identical to the legacy global fill run over a network in
        which these are the only flows.

        Per-link unfrozen-flow counts are maintained incrementally:
        O(rounds * (flows + links)) instead of recounting every link's
        flow set each round.  All working collections are
        insertion-ordered dicts-as-sets, never hash sets: every
        iteration below happens in the same order on every run, so
        nothing downstream can pick up hash-seed jitter.
        """
        rate = {f: 0.0 for f in active}
        active_set = set(active)  # membership tests only, never iterated
        unfrozen = dict.fromkeys(active)
        constrained = dict.fromkeys(
            link for f in active for link in f.path if link.capacity is not None
        )
        headroom = {link: float(link.capacity) for link in constrained}
        count = {
            link: sum(1 for f in link._flows if f in active_set)
            for link in constrained
        }

        def freeze(flow: Flow) -> None:
            # A path is a set of resources: a link listed twice (loopback
            # quirk) still carries the flow once, matching Link._flows.
            for link in dict.fromkeys(flow.path):
                if link in count:
                    count[link] -= 1

        while unfrozen:
            # Smallest equal increment that saturates a link or caps a flow.
            inc = math.inf
            for link, n in count.items():
                if n > 0:
                    inc = min(inc, headroom[link] / n)
            for f in unfrozen:
                if f.max_rate is not None:
                    inc = min(inc, f.max_rate - rate[f])
            if math.isinf(inc):
                # Every remaining flow traverses only unconstrained links
                # and has no cap: give them an effectively unbounded rate.
                for f in unfrozen:
                    rate[f] = math.inf
                break
            inc = max(inc, 0.0)
            newly_frozen: dict[Flow, None] = {}
            for f in unfrozen:
                rate[f] += inc
                if f.max_rate is not None and rate[f] >= f.max_rate - _EPS:
                    rate[f] = f.max_rate
                    newly_frozen[f] = None
            for link, n in count.items():
                headroom[link] -= inc * n
                if headroom[link] <= _EPS and n > 0:
                    for f in link._flows:
                        if f in unfrozen:
                            newly_frozen[f] = None
            if not newly_frozen:
                # Numerical corner: freeze everything to guarantee progress.
                newly_frozen = dict(unfrozen)
            for f in newly_frozen:
                if f in unfrozen:
                    freeze(f)
                    del unfrozen[f]

        for f in active:
            f.rate = rate[f]

    def _record_utilization(self) -> None:
        """Sample every constrained link's utilization gauge (on change)."""
        metrics = self.env.tracer.metrics
        links: dict[Link, None] = {}
        for f in self._flows:
            for link in f.path:
                if link.capacity is not None:
                    links[link] = None
        # Links that drained since the last sample must drop back to 0.
        for link in list(self._util_traced):
            links.setdefault(link, None)
        for link in links:
            util = link.utilization()
            if self._util_traced.get(link) != util:
                self._util_traced[link] = util
                metrics.gauge(f"link.util/{link.name}", util)

    def _complete(self, flow: Flow) -> None:
        self._detach(flow)
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.finished_at = self.env.now
        if flow._span is not None:
            flow._span.end(outcome="done")
            flow._span = None
        flow.done.succeed(flow)

    def _schedule_wakeup(self) -> None:
        """Arrange to wake at the earliest flow-completion instant.

        Completion instants live in a lazy min-heap: a flow's entry is
        refreshed (generation-bumped) whenever its component is
        recomputed, so the heap top — after skipping superseded
        generations — is the next completion across all components,
        without the legacy O(flows) scan.

        Two further mechanisms keep recompute() storms (fault flapping)
        from growing the event heap without bound, where the old
        clear-the-callbacks approach leaked one dead Timeout per call:

        * a new Timeout is pushed only when the needed wake time is
          *earlier* than the pending one — an early (spurious) wakeup
          just recomputes and reschedules;
        * a superseded wakeup is cancelled through
          :meth:`Environment.cancel`, whose lazy-deletion-with-compaction
          keeps dead entries a bounded fraction of the queue.  The
          generation counter is belt-and-braces against a wakeup caught
          mid-dispatch, where cancellation can no longer intercept it.
        """
        heap = self._eta_heap
        while heap and heap[0][2] != heap[0][3]._eta_gen:
            heapq.heappop(heap)
        if len(heap) > 64 and len(heap) > 4 * (len(self._flows) + 1):
            live = [entry for entry in heap if entry[2] == entry[3]._eta_gen]
            heap[:] = live
            heapq.heapify(heap)
        if not heap:
            # Nothing can complete; let any pending wakeup fire spuriously.
            return
        eta, _seq, _gen, _flow, rel, anchor = heap[0]
        due = eta
        if (
            self._wakeup is not None
            and self._wakeup._scheduled
            and self._wakeup_time <= due * (1 + 1e-12) + 1e-9
        ):
            return
        if self._wakeup is not None and self._wakeup._scheduled:
            self.env.cancel(self._wakeup)
        self._wakeup_gen += 1
        gen = self._wakeup_gen
        now = self.env._now
        if anchor == now:
            # The top entry was anchored at this very instant; reuse its
            # relative delay so the scheduled time is bit-identical to
            # computing remaining/rate directly.
            delay = rel
        else:
            delay = eta - now
            if delay < 0.0:
                delay = 0.0
        wake = self.env.timeout(delay)
        self._wakeup = wake
        self._wakeup_time = due
        wake.callbacks.append(lambda _event, gen=gen: self._on_wakeup(gen))

    def _on_wakeup(self, gen: int) -> None:
        if gen != self._wakeup_gen:
            return  # superseded by an earlier wakeup; nothing to do
        self._wakeup = None
        self._wakeup_time = math.inf
        now = self.env._now
        heap = self._eta_heap
        dirty = self._dirty
        candidates = 0
        while heap:
            eta, _seq, egen, flow, _rel, _anchor = heap[0]
            if egen != flow._eta_gen:
                heapq.heappop(heap)
                continue
            # Candidate iff the dust predicate can pass once credited:
            # remaining - rate*(now - anchor) <= _EPS + rate*1e-9, i.e.
            # eta <= now + 1e-9 + _EPS/rate (rate == inf gives eta == anchor).
            if eta > now + 1e-9 + _EPS / flow.rate:
                break
            heapq.heappop(heap)
            flow._eta_gen += 1
            candidates += 1
            for link in flow.path:
                dirty[link] = None
        if candidates:
            self._reallocate(_wakeup_sweep=True)
            return
        # Spurious early wake (a kept, slightly-early timer): mirror the
        # legacy engine — credit everything, complete any dust, and
        # reschedule from the freshly split remainders.
        flows = list(self._flows)
        self._credit(flows)
        finished = [
            f
            for f in flows
            if f.remaining <= _EPS + f.rate * 1e-9 or math.isinf(f.rate)
        ]
        if finished:
            for f in finished:
                for link in f.path:
                    dirty[link] = None
            self._reallocate(_wakeup_sweep=True)
            return
        for f in flows:
            f._eta_gen += 1
            rate = f.rate
            if rate > _EPS:
                rel = f.remaining / rate
                if rel < 0.0:
                    rel = 0.0
                heapq.heappush(heap, (now + rel, f._seq, f._eta_gen, f, rel, now))
        self._schedule_wakeup()
