"""Fluid-flow bandwidth model with max-min fair sharing.

Package downloads during a Kickstart reinstall are modelled as *flows*:
a number of bytes moving along a path of capacity-limited links.  When
several nodes reinstall concurrently their flows share the install
server's uplink, and the classic **progressive-filling max-min fair**
allocation decides who gets what.  This is the mechanism behind Table I
of the paper: with few nodes every flow gets its full demand, and past
the server's saturation point (~7 concurrent full-speed installs on
100 Mbit) per-flow rates drop and reinstall times stretch.

Rates are recomputed from scratch whenever a flow starts or finishes
(an O(links x flows) operation per change, fine at cluster scale), and
between recomputations every flow progresses linearly — so completion
times can be scheduled exactly, keeping the simulation deterministic.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Link", "Flow", "FlowNetwork"]

#: Rates below this (bytes/sec) are treated as zero to avoid float dust.
_EPS = 1e-9


class Link:
    """A capacity-limited, unidirectional network resource.

    ``capacity`` is in bytes/second.  A link with ``capacity=None`` is
    unconstrained (useful for switch backplanes we do not model).
    """

    __slots__ = ("name", "capacity", "bytes_carried", "_flows")

    def __init__(self, name: str, capacity: Optional[float]):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity!r}")
        self.name = name
        self.capacity = capacity
        #: cumulative payload bytes this link has carried (flows credit it
        #: as they progress; multicast datagrams add their payload too) —
        #: the per-NIC counter monitoring agents sample.
        self.bytes_carried = 0.0
        # Insertion-ordered (dict-as-set): iteration order, and therefore
        # every float sum and event seq derived from it, is deterministic.
        self._flows: dict["Flow", None] = {}

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def utilization(self) -> float:
        """Current fraction of capacity in use, always within [0, 1].

        Infinite-rate flows (allocated while their whole path was
        unconstrained, before this link regained a finite capacity) are
        excluded, and transient oversubscription — a capacity degraded
        under live flows, before the next ``recompute()`` — clamps to 1.
        """
        if self.capacity is None:
            return 0.0
        # Explicit loop, no genexpr/isinf frames: monitoring agents call
        # this for every NIC on every sample tick.
        inf = math.inf
        used = 0.0
        for f in self._flows:
            rate = f.rate
            if rate != inf:
                used += rate
        return min(used / self.capacity, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else f"{self.capacity:.0f}B/s"
        return f"Link({self.name!r}, {cap}, {len(self._flows)} flows)"


class Flow:
    """An in-flight transfer of ``size`` bytes along ``path``.

    ``max_rate`` caps the flow below its fair share — this models a
    receiver that cannot consume faster than it installs packages.
    ``done`` is an engine Event that triggers when the last byte lands.
    """

    __slots__ = (
        "network",
        "path",
        "size",
        "remaining",
        "max_rate",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "label",
        "_completion_seq",
        "_span",
    )

    def __init__(
        self,
        network: "FlowNetwork",
        path: tuple[Link, ...],
        size: float,
        max_rate: Optional[float],
        label: str,
    ):
        self.network = network
        self.path = path
        self.size = float(size)
        self.remaining = float(size)
        self.max_rate = max_rate
        self.rate = 0.0
        self.done: Event = network.env.event()
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self.label = label
        self._completion_seq = 0
        self._span = None  # telemetry span, when tracing is enabled

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.network.env.now
        return end - self.started_at

    def cancel(self) -> None:
        """Abort the transfer; ``done`` fails with :class:`TransferAborted`."""
        self.network._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flow({self.label!r}, {self.remaining:.0f}/{self.size:.0f}B, "
            f"{self.rate:.0f}B/s)"
        )


class TransferAborted(Exception):
    """The flow was cancelled before completion (e.g. node power-cycled)."""


class FlowNetwork:
    """Tracks active flows and keeps their max-min fair rates current."""

    def __init__(self, env: Environment):
        self.env = env
        # dict-as-set: insertion-ordered, so rate credits and completion
        # seqs are assigned in a run-to-run deterministic order.
        self._flows: dict[Flow, None] = {}
        self._last_update = env.now
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf
        self._wakeup_gen = 0
        self._bytes_moved = 0.0
        self._util_traced: dict[Link, float] = {}

    # -- public API -------------------------------------------------------
    def transfer(
        self,
        path: Iterable[Link],
        size: float,
        max_rate: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Start a transfer; returns the :class:`Flow` (wait on ``flow.done``)."""
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size!r}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate!r}")
        flow = Flow(self, tuple(path), size, max_rate, label)
        tracer = self.env.tracer
        if tracer.enabled:
            flow._span = tracer.span(
                "flow",
                label or "flow",
                size=float(size),
                links=[link.name for link in flow.path],
            )
        if size == 0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            if flow._span is not None:
                flow._span.end(outcome="done")
                flow._span = None
            return flow
        self._advance()
        self._flows[flow] = None
        for link in flow.path:
            link._flows[flow] = None
        self._reallocate()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_through(self, link: Link) -> list[Flow]:
        """Snapshot of the in-flight flows whose path crosses ``link``.

        Public accessor so callers (e.g. ``HttpServer.abort_transfers``)
        can find and cancel a link's flows without touching internals;
        returns a list so cancelling while iterating is safe.
        """
        return [flow for flow in self._flows if link in flow.path]

    @property
    def bytes_moved(self) -> float:
        """Total bytes delivered across all completed and in-flight flows."""
        self._advance()
        return self._bytes_moved

    def recompute(self) -> None:
        """Re-run fair sharing after an exogenous capacity change.

        Link capacities are read only when rates are allocated, so fault
        injection (degrading a NIC mid-transfer) must credit progress at
        the old rates and then redistribute.
        """
        self._advance()
        self._reallocate()

    # -- internals ----------------------------------------------------------
    def _cancel(self, flow: Flow) -> None:
        if flow not in self._flows:
            return
        self._advance()
        self._detach(flow)
        flow.finished_at = self.env.now
        if flow._span is not None:
            flow._span.end(outcome="cancelled", remaining=flow.remaining)
            flow._span = None
        flow.done.fail(TransferAborted(flow.label))
        self._reallocate()

    def _detach(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link._flows.pop(flow, None)

    def _advance(self) -> None:
        """Credit every flow with bytes moved since the last update."""
        now = self.env.now
        dt = now - self._last_update
        if dt < 0:
            raise SimulationError("simulation time went backwards")
        if dt > 0:
            for flow in self._flows:
                if math.isinf(flow.rate):
                    moved = flow.remaining
                else:
                    moved = min(flow.remaining, flow.rate * dt)
                flow.remaining -= moved
                self._bytes_moved += moved
                # Snap float dust to done: less than a nanosecond of work
                # left must not schedule another (zero-delay) wakeup.
                if flow.remaining <= _EPS + flow.rate * 1e-9:
                    self._bytes_moved += flow.remaining
                    moved += flow.remaining
                    flow.remaining = 0.0
                if moved:
                    for link in flow.path:
                        link.bytes_carried += moved
            self._last_update = now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates via progressive filling.

        All unconstrained flows are raised in lockstep until a link
        saturates or a flow hits its own ``max_rate``; those flows freeze
        and the rest keep filling.
        """
        active = [f for f in self._flows if f.remaining > _EPS]
        # Flows that raced to zero remaining without an update cycle:
        for f in list(self._flows):
            if f.remaining <= _EPS:
                self._complete(f)
        if not active:
            self._schedule_wakeup()
            return

        # Progressive filling with incrementally-maintained per-link
        # unfrozen-flow counts: O(rounds * (flows + links)) instead of
        # recounting every link's flow set each round (which made large
        # concurrent-reinstall runs cubic in cluster size).  All working
        # collections are insertion-ordered dicts-as-sets, never hash
        # sets: every iteration below happens in the same order on every
        # run, so nothing downstream can pick up hash-seed jitter.
        rate = {f: 0.0 for f in active}
        active_set = set(active)  # membership tests only, never iterated
        unfrozen = dict.fromkeys(active)
        constrained = dict.fromkeys(
            link for f in active for link in f.path if link.capacity is not None
        )
        headroom = {link: float(link.capacity) for link in constrained}
        count = {
            link: sum(1 for f in link._flows if f in active_set)
            for link in constrained
        }

        def freeze(flow: Flow) -> None:
            # A path is a set of resources: a link listed twice (loopback
            # quirk) still carries the flow once, matching Link._flows.
            for link in dict.fromkeys(flow.path):
                if link in count:
                    count[link] -= 1

        while unfrozen:
            # Smallest equal increment that saturates a link or caps a flow.
            inc = math.inf
            for link, n in count.items():
                if n > 0:
                    inc = min(inc, headroom[link] / n)
            for f in unfrozen:
                if f.max_rate is not None:
                    inc = min(inc, f.max_rate - rate[f])
            if math.isinf(inc):
                # Every remaining flow traverses only unconstrained links
                # and has no cap: give them an effectively unbounded rate.
                for f in unfrozen:
                    rate[f] = math.inf
                break
            inc = max(inc, 0.0)
            newly_frozen: dict[Flow, None] = {}
            for f in unfrozen:
                rate[f] += inc
                if f.max_rate is not None and rate[f] >= f.max_rate - _EPS:
                    rate[f] = f.max_rate
                    newly_frozen[f] = None
            for link, n in count.items():
                headroom[link] -= inc * n
                if headroom[link] <= _EPS and n > 0:
                    for f in link._flows:
                        if f in unfrozen:
                            newly_frozen[f] = None
            if not newly_frozen:
                # Numerical corner: freeze everything to guarantee progress.
                newly_frozen = dict(unfrozen)
            for f in newly_frozen:
                if f in unfrozen:
                    freeze(f)
                    del unfrozen[f]

        for f in active:
            f.rate = rate[f]
        if self.env.tracer.enabled:
            self._record_utilization()
        self._schedule_wakeup()

    def _record_utilization(self) -> None:
        """Sample every constrained link's utilization gauge (on change)."""
        metrics = self.env.tracer.metrics
        links: dict[Link, None] = {}
        for f in self._flows:
            for link in f.path:
                if link.capacity is not None:
                    links[link] = None
        # Links that drained since the last sample must drop back to 0.
        for link in list(self._util_traced):
            links.setdefault(link, None)
        for link in links:
            util = link.utilization()
            if self._util_traced.get(link) != util:
                self._util_traced[link] = util
                metrics.gauge(f"link.util/{link.name}", util)

    def _complete(self, flow: Flow) -> None:
        self._detach(flow)
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.finished_at = self.env.now
        if flow._span is not None:
            flow._span.end(outcome="done")
            flow._span = None
        flow.done.succeed(flow)

    def _schedule_wakeup(self) -> None:
        """Arrange to wake at the earliest flow-completion instant.

        Two mechanisms keep recompute() storms (fault flapping) from
        growing the event heap without bound, where the old
        clear-the-callbacks approach leaked one dead Timeout per call:

        * a new Timeout is pushed only when the needed wake time is
          *earlier* than the pending one — an early (spurious) wakeup
          just recomputes and reschedules;
        * a superseded wakeup is cancelled through
          :meth:`Environment.cancel`, whose lazy-deletion-with-compaction
          keeps dead entries a bounded fraction of the queue.  The
          generation counter is belt-and-braces against a wakeup caught
          mid-dispatch, where cancellation can no longer intercept it.
        """
        soonest = math.inf
        for f in self._flows:
            if f.rate > _EPS:
                soonest = min(soonest, f.remaining / f.rate)
            elif f.rate == math.inf:
                soonest = 0.0
        if math.isinf(soonest):
            # Nothing can complete; let any pending wakeup fire spuriously.
            return
        due = self.env.now + max(soonest, 0.0)
        if (
            self._wakeup is not None
            and self._wakeup._scheduled
            and self._wakeup_time <= due * (1 + 1e-12) + 1e-9
        ):
            return
        if self._wakeup is not None and self._wakeup._scheduled:
            self.env.cancel(self._wakeup)
        self._wakeup_gen += 1
        gen = self._wakeup_gen
        wake = self.env.timeout(max(soonest, 0.0))
        self._wakeup = wake
        self._wakeup_time = due
        wake.callbacks.append(lambda _event, gen=gen: self._on_wakeup(gen))

    def _on_wakeup(self, gen: int) -> None:
        if gen != self._wakeup_gen:
            return  # superseded by an earlier wakeup; nothing to do
        self._wakeup = None
        self._wakeup_time = math.inf
        self._advance()
        finished = [
            f
            for f in self._flows
            if f.remaining <= _EPS + f.rate * 1e-9 or math.isinf(f.rate)
        ]
        for f in finished:
            self._complete(f)
        self._reallocate()
