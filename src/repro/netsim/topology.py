"""Network topology: hosts, NIC links, and path resolution.

The Rocks architecture (Figure 1 of the paper) is deliberately minimal:
every machine hangs off one Ethernet switch via its integrated NIC; there
is no dedicated management network.  We model exactly that — each host
gets a full-duplex access link (separate transmit and receive sides) and
the switch backplane is unconstrained, so the only contention points are
host NICs.  That matches the paper's analysis, where the install server's
100 Mbit uplink is the bottleneck.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .engine import Environment
from .flows import Flow, FlowNetwork, Link

__all__ = ["Host", "Network", "MBIT", "MBYTE", "FAST_ETHERNET", "GIGABIT_ETHERNET"]

#: One megabit per second, expressed in bytes/second.
MBIT = 1_000_000 / 8
#: One megabyte (decimal, as the paper uses MB/sec) in bytes.
MBYTE = 1_000_000
#: Common NIC speeds, bytes/second.
FAST_ETHERNET = 100 * MBIT
GIGABIT_ETHERNET = 1000 * MBIT


class Host:
    """An attached machine: a name plus its duplex access link."""

    __slots__ = ("name", "tx", "rx", "up")

    def __init__(self, name: str, speed: float):
        self.name = name
        self.tx = Link(f"{name}.tx", speed)
        self.rx = Link(f"{name}.rx", speed)
        self.up = True

    @property
    def speed(self) -> float:
        return float(self.tx.capacity or 0.0)

    def set_speed(self, speed: float) -> None:
        """Swap the NIC for a faster one (e.g. Fast Ethernet -> Gigabit)."""
        if speed <= 0:
            raise ValueError("link speed must be positive")
        self.tx.capacity = speed
        self.rx.capacity = speed

    def __repr__(self) -> str:  # pragma: no cover
        return f"Host({self.name!r}, {self.speed / MBIT:.0f}Mbit, up={self.up})"


class HostDown(Exception):
    """Raised when a transfer is attempted to or from a detached host."""


class Network:
    """A single switched Ethernet segment with fluid-flow transfers."""

    def __init__(self, env: Environment):
        self.env = env
        self.flows = FlowNetwork(env)
        self._hosts: dict[str, Host] = {}
        self._multicast_groups: dict[str, "MulticastGroup"] = {}

    def multicast(self, address: str) -> "MulticastGroup":
        """The segment's multicast group for ``address`` (created once).

        Every caller asking for the same address shares one group, so a
        publisher reaches all subscribers that joined via any reference.
        """
        group = self._multicast_groups.get(address)
        if group is None:
            from .multicast import MulticastGroup

            group = MulticastGroup(self, address)
            self._multicast_groups[address] = group
        return group

    def attach(self, name: str, speed: float = FAST_ETHERNET) -> Host:
        """Attach a host to the segment; names must be unique."""
        if name in self._hosts:
            raise ValueError(f"host {name!r} already attached")
        host = Host(name, speed)
        self._hosts[name] = host
        return host

    def detach(self, name: str) -> None:
        """Administratively remove a host (its in-flight flows abort)."""
        host = self._hosts.pop(name)
        host.up = False
        self._abort_host_flows(host)

    def _abort_host_flows(self, host: Host) -> None:
        """Cancel every flow crossing either side of a host's NIC.

        Uses the per-link flow index rather than scanning all flows —
        a whole-site power failure cancels per-host in O(host's flows),
        not O(cluster's flows) per host.  A loopback flow appears on
        both sides; the dict dedupes it so it is cancelled once.
        """
        doomed = list(
            dict.fromkeys(
                self.flows.flows_through(host.tx) + self.flows.flows_through(host.rx)
            )
        )
        # Cancel in flow-start order, matching the legacy global scan, so
        # the abort events fire in the same deterministic sequence.
        doomed.sort(key=lambda flow: flow._seq)
        for flow in doomed:
            flow.cancel()

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"no host named {name!r} on this network") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self) -> Iterable[Host]:
        return self._hosts.values()

    def set_host_speed(self, name: str, speed: float) -> None:
        """Change a host's NIC speed, rebalancing in-flight transfers.

        This is the link-degradation fault: unlike :meth:`Host.set_speed`
        (a pre-run configuration), it is safe while flows are active.
        Only the components crossing this host's NIC are recomputed.
        """
        host = self.host(name)
        host.set_speed(speed)
        self.flows.recompute([host.tx, host.rx])

    def set_host_up(self, name: str, up: bool) -> None:
        """Mark a host's link state; down hosts cannot move traffic."""
        host = self.host(name)
        host.up = up
        if not up:
            self._abort_host_flows(host)

    def reachable(self, src: str, dst: str) -> bool:
        """True when both endpoints are attached and link-up."""
        return (
            src in self._hosts
            and dst in self._hosts
            and self._hosts[src].up
            and self._hosts[dst].up
        )

    def path(self, src: str, dst: str) -> tuple[Link, ...]:
        """Links a byte crosses from ``src`` to ``dst``: sender tx, receiver rx."""
        a, b = self.host(src), self.host(dst)
        if not a.up:
            raise HostDown(src)
        if not b.up:
            raise HostDown(dst)
        return (a.tx, b.rx)

    def send(
        self,
        src: str,
        dst: str,
        nbytes: float,
        max_rate: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Start a transfer from ``src`` to ``dst``; wait on ``.done``."""
        return self.flows.transfer(
            self.path(src, dst),
            nbytes,
            max_rate=max_rate,
            label=label or f"{src}->{dst}",
        )
