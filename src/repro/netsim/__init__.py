"""Discrete-event network simulation substrate.

Provides the simulated clock (:class:`Environment`), process model, and a
fluid-flow network with max-min fair bandwidth sharing.  Everything in the
Rocks reproduction — node installs, service restarts, HTTP transfers —
runs on this engine.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .flows import Flow, FlowNetwork, Link, TransferAborted
from .multicast import Datagram, MulticastGroup
from .profiler import (
    EngineProfiler,
    ProfiledEnvironment,
    ProfileOptions,
    ProfileSession,
    profiled,
)
from .http import (
    DEFAULT_HTTP_EFFICIENCY,
    AdmissionConfig,
    HttpError,
    HttpResponse,
    HttpServer,
    LoadBalancer,
)
from .topology import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MBIT,
    MBYTE,
    Host,
    HostDown,
    Network,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Flow",
    "FlowNetwork",
    "Link",
    "TransferAborted",
    "Datagram",
    "MulticastGroup",
    "AdmissionConfig",
    "HttpError",
    "HttpResponse",
    "HttpServer",
    "LoadBalancer",
    "DEFAULT_HTTP_EFFICIENCY",
    "Host",
    "HostDown",
    "Network",
    "FAST_ETHERNET",
    "GIGABIT_ETHERNET",
    "MBIT",
    "MBYTE",
    "EngineProfiler",
    "ProfiledEnvironment",
    "ProfileOptions",
    "ProfileSession",
    "profiled",
]
