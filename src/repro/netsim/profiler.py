"""Engine self-profiler: where does the *wall* time of a run go?

Critical-path analysis (:mod:`repro.telemetry.critpath`) explains
simulated time; this module explains the simulator itself.  A
:class:`ProfiledEnvironment` counts events dispatched, heap pushes and
pops, bulk timeout batches, and fair-share refills, and attributes the
wall-clock time spent inside event callbacks to the *simulation code
site* that consumed it (the process generator a ``Process._resume``
drives, or the function a raw callback points at).

Opt-in and zero-overhead-when-off, by the same construction-time
class-swap the schedule sanitizer uses: the default ``Environment()``
hot paths (``_schedule``/``step``/``run``/``timeout_batch``) carry no
profiler branch at all — ``bench_scaling_10k.py --quick``'s overhead
guard asserts exactly that.  Profiling swaps in this subclass either
explicitly (``ProfiledEnvironment()``) or ambiently for scenarios that
build their environments internally::

    with profiled() as session:
        result = run_storm(opts)
    print(session.render())

Wall-clock reads are the whole point here, so this module carries the
repo's only sanctioned ``perf_counter`` use (RK201 baseline entry);
profiler output is diagnostic and is never byte-compared in CI.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional

from . import engine as _engine
from .engine import Environment, Event, Process, SimulationError, Timeout

__all__ = [
    "ProfileOptions",
    "EngineProfiler",
    "ProfiledEnvironment",
    "ProfileSession",
    "profiled",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _relpath(filename: str) -> str:
    try:
        return Path(filename).resolve().relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return filename


@dataclass(frozen=True)
class ProfileOptions:
    """What to collect.

    ``by_site`` controls per-callback-site wall attribution — the most
    useful view, but also the most expensive (one ``perf_counter`` pair
    per callback); turn it off to count events and heap traffic only.
    """

    by_site: bool = True


def _site_of(cb) -> str:
    """The simulation code a callback spends its wall time in.

    A ``Process._resume`` callback executes the process's *generator*,
    so the generator's code object is the honest attribution target —
    ``installer/anaconda.py:driver``, not ``engine.py:_resume``.
    """
    owner = getattr(cb, "__self__", None)
    if isinstance(owner, Process):
        code = owner.generator.gi_code
        return f"{_relpath(code.co_filename)}:{code.co_name}"
    func = getattr(cb, "__func__", cb)
    code = getattr(func, "__code__", None)
    if code is not None:
        return f"{_relpath(code.co_filename)}:{code.co_name}"
    return type(cb).__name__


class EngineProfiler:
    """Counters accumulated by one :class:`ProfiledEnvironment`."""

    def __init__(self, options: ProfileOptions, initial_time: float = 0.0):
        self.options = options
        self.events_dispatched = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.timeout_batches = 0
        self.callback_wall_s = 0.0
        self.sim_t0 = initial_time
        self.sim_t1 = initial_time
        #: site -> [calls, wall seconds]
        self.by_site: dict[str, list] = {}
        self._networks: list = []

    # -- wiring ------------------------------------------------------------
    def note_network(self, network: Any) -> None:
        """Register a FlowNetwork so refill counts land in the report."""
        self._networks.append(network)

    @property
    def fair_share_refills(self) -> int:
        return sum(net.reallocations for net in self._networks)

    @property
    def sim_seconds(self) -> float:
        return self.sim_t1 - self.sim_t0

    # -- reporting ---------------------------------------------------------
    def report(self) -> dict:
        """Everything as plain data (wall figures are non-deterministic)."""
        sites = sorted(
            self.by_site.items(), key=lambda kv: (-kv[1][1], kv[0])
        )
        return {
            "events_dispatched": self.events_dispatched,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "timeout_batches": self.timeout_batches,
            "fair_share_refills": self.fair_share_refills,
            "sim_seconds": self.sim_seconds,
            "callback_wall_s": self.callback_wall_s,
            "sites": [
                {"site": site, "calls": calls, "wall_s": wall}
                for site, (calls, wall) in sites
            ],
        }

    def render(self, top: int = 10) -> str:
        lines = [
            f"engine profile: {self.events_dispatched} events dispatched",
            f"  heap: {self.heap_pushes} pushes, {self.heap_pops} pops, "
            f"{self.timeout_batches} bulk timeout batches",
            f"  fair-share refills: {self.fair_share_refills}",
            f"  simulated {self.sim_seconds:.1f} s in "
            f"{self.callback_wall_s:.3f} s of callback wall time",
        ]
        if self.by_site:
            lines.append("  hottest callback sites (wall seconds):")
            sites = sorted(
                self.by_site.items(), key=lambda kv: (-kv[1][1], kv[0])
            )
            for site, (calls, wall) in sites[:top]:
                lines.append(f"    {wall:9.4f}  {calls:>9} calls  {site}")
            if len(sites) > top:
                lines.append(f"    ({len(sites) - top} more sites)")
        return "\n".join(lines)


class ProfiledEnvironment(Environment):
    """An :class:`Environment` whose scheduling and dispatch are counted.

    Semantically identical to the base environment — same event order,
    same sequence numbers, same simulated results — it only adds
    counters and (optionally) a ``perf_counter`` pair around each
    callback.  The overhead lives entirely in this subclass; plain
    environments never pay it.
    """

    __slots__ = ("profile",)

    def __init__(self, initial_time: float = 0.0, sanitize: Any = None,
                 profile: Optional[ProfileOptions] = None):
        options = profile
        if options is None:
            options = getattr(_engine, "_AMBIENT_PROFILE", None)
        if options is None:
            options = ProfileOptions()
        super().__init__(initial_time)
        self.profile = EngineProfiler(options, initial_time)
        session = _ACTIVE_SESSION
        if session is not None:
            session.envs.append(self)

    # -- counted scheduling ------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self.profile.heap_pushes += 1
        super()._schedule(event, delay)

    def timeout_batch(self, delays: Iterable[float],
                      value: Any = None) -> list[Timeout]:
        out = super().timeout_batch(delays, value)
        self.profile.heap_pushes += len(out)
        self.profile.timeout_batches += 1
        return out

    # -- counted dispatch --------------------------------------------------
    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no more events to step through")
        prof = self.profile
        when, _, event = heapq.heappop(self._queue)
        prof.heap_pops += 1
        self._now = when
        if event._cancelled:
            self._n_cancelled -= 1
            event._scheduled = False
            return
        callbacks, event.callbacks = event.callbacks, []
        event._scheduled = False
        self.events_dispatched += 1
        prof.events_dispatched += 1
        prof.sim_t1 = when
        if prof.options.by_site:
            perf = time.perf_counter
            by_site = prof.by_site
            for cb in callbacks:
                t0 = perf()
                cb(event)
                dt = perf() - t0
                prof.callback_wall_s += dt
                site = _site_of(cb)
                stat = by_site.get(site)
                if stat is None:
                    by_site[site] = [1, dt]
                else:
                    stat[0] += 1
                    stat[1] += dt
        else:
            for cb in callbacks:
                cb(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        # Same semantics as the base loop, routed through the counting
        # step(); profiled runs trade raw dispatch speed for visibility.
        step = self.step
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._triggered:
                if stop_event._cancelled:
                    raise SimulationError(
                        "run(until=...) awaits a cancelled event, "
                        "which can never trigger"
                    )
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    )
                step()
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= deadline:
            step()
        if deadline != float("inf"):
            self._now = max(self._now, deadline)
        return None


class ProfileSession:
    """Collects the profilers of every environment built inside a
    :func:`profiled` block (scenarios usually build exactly one)."""

    def __init__(self, options: ProfileOptions):
        self.options = options
        self.envs: list[ProfiledEnvironment] = []

    @property
    def profilers(self) -> list[EngineProfiler]:
        return [env.profile for env in self.envs]

    def render(self, top: int = 10) -> str:
        if not self.envs:
            return "engine profile: no environments were built"
        return "\n".join(p.render(top=top) for p in self.profilers)


_ACTIVE_SESSION: Optional[ProfileSession] = None


@contextmanager
def profiled(options: Optional[ProfileOptions] = None):
    """Ambiently profile every Environment built inside the block.

    Mirrors :func:`repro.analysis.sanitizer.sanitized`: sets the ambient
    profile option so internally-constructed environments
    (``build_cluster``, ``run_storm``) come out as
    :class:`ProfiledEnvironment`, and yields a session holding their
    profilers.  If an ambient *sanitize* option is also active, the
    sanitizer wins — its subclass carries the diagnostic machinery.
    """
    global _ACTIVE_SESSION
    opts = options or ProfileOptions()
    session = ProfileSession(opts)
    prev_option = _engine.set_ambient_profile(opts)
    prev_session = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    try:
        yield session
    finally:
        _ACTIVE_SESSION = prev_session
        _engine.set_ambient_profile(prev_option)
