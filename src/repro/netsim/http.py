"""Minimal HTTP layer on top of the fluid-flow network.

Rocks pulls everything over HTTP: compute nodes fetch their generated
Kickstart file from a CGI script and then pull every RPM from the install
server.  We model an HTTP server as

* a document tree mapping URL paths to byte sizes (static resources),
* optional *CGI handlers* whose response body is computed per-request
  (this is how the Kickstart generator is wired in), and
* a protocol-efficiency factor: the paper observes a 100 Mbit server
  sustains 7-8 MB/s of useful payload, i.e. ~70% of wire speed, so each
  server throttles its aggregate payload rate through a virtual link.

Replicated servers plus :class:`LoadBalancer` model the paper's
"N web servers support N times the concurrent reinstallations" argument.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .engine import AnyOf, Environment, Event, Interrupt, Process
from .flows import Link
from .topology import Network

__all__ = [
    "HttpServer",
    "HttpResponse",
    "HttpError",
    "AdmissionConfig",
    "LoadBalancer",
    "DEFAULT_HTTP_EFFICIENCY",
]

#: Fraction of wire speed an HTTP server can turn into payload (paper §6.3).
DEFAULT_HTTP_EFFICIENCY = 0.70


class HttpError(Exception):
    """An HTTP-level failure, carrying a status code.

    ``retry_after`` mirrors the Retry-After response header: a hint (in
    seconds) for when the client should try again, attached to 503s shed
    by admission control.  ``server`` names the backend that answered,
    so clients behind a load balancer can attribute the failure.
    """

    def __init__(
        self,
        status: int,
        reason: str,
        retry_after: Optional[float] = None,
        server: str = "",
    ):
        super().__init__(f"{status} {reason}")
        self.status = status
        self.reason = reason
        self.retry_after = retry_after
        self.server = server


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs for one :class:`HttpServer`.

    ``max_concurrent`` caps in-flight requests; arrivals beyond the cap
    wait in a FIFO accept queue of at most ``queue_limit`` entries for up
    to ``queue_timeout`` seconds.  Requests shed from a full queue (or
    timed out waiting) get a 503 whose Retry-After is ``retry_after``.

    ``retry_jitter`` spreads the hint: each shed response advertises a
    Retry-After drawn uniformly from ``[retry_after, retry_after *
    (1 + retry_jitter)]`` using a per-server RNG seeded from
    ``jitter_seed`` and the host name.  Without it, a thundering herd
    shed in the same tick retries in the same tick — and is shed again,
    forever in lockstep.  Zero (the default) keeps the fixed hint.
    """

    max_concurrent: int
    queue_limit: int = 16
    queue_timeout: float = 30.0
    retry_after: float = 15.0
    retry_jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive")
        if self.retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")


@dataclass
class HttpResponse:
    """Outcome of a GET: status, payload size, optional computed body.

    ``checksum`` is filled in by content-aware layers (the install
    server stamps each RPM's payload digest); empty means unverifiable.
    """

    status: int
    path: str
    size: float
    body: Any = None
    server: str = ""
    checksum: str = ""


CgiHandler = Callable[[str, str], tuple[Any, float]]
"""CGI callable: (client_host_name, path) -> (body, body_size_bytes)."""


class HttpServer:
    """An HTTP daemon bound to a host on a :class:`Network`."""

    def __init__(
        self,
        network: Network,
        host: str,
        efficiency: float = DEFAULT_HTTP_EFFICIENCY,
    ):
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency!r}")
        self.network = network
        self.host = host
        self.efficiency = efficiency
        link = network.host(host).tx
        # Virtual service link: caps aggregate *payload* below wire speed.
        self.service_link = Link(
            f"{host}.http", (link.capacity or 0.0) * efficiency or None
        )
        self._documents: dict[str, float] = {}
        self._cgi: dict[str, CgiHandler] = {}
        self._requests_served = 0
        self._bytes_served = 0.0
        self.running = True
        self.admission: Optional[AdmissionConfig] = None
        self._in_flight = 0
        self._accept_queue: deque[Event] = deque()
        self._rejected = 0
        self._queue_timeouts = 0
        self._retry_rng: Optional[random.Random] = None

    # -- content management ----------------------------------------------
    def publish(self, path: str, size: float) -> None:
        """Expose a static resource of ``size`` bytes at ``path``."""
        if size < 0:
            raise ValueError("resource size must be non-negative")
        self._documents[self._norm(path)] = float(size)

    def publish_tree(self, tree: dict[str, float], prefix: str = "") -> None:
        for path, size in tree.items():
            self.publish(prefix + path, size)

    def unpublish(self, path: str) -> None:
        self._documents.pop(self._norm(path), None)

    def register_cgi(self, path: str, handler: CgiHandler) -> None:
        """Mount a CGI script (e.g. the kickstart generator) at ``path``."""
        self._cgi[self._norm(path)] = handler

    def cgi_mounts(self) -> dict[str, CgiHandler]:
        """Snapshot of mounted CGI handlers (for cloning onto replicas)."""
        return dict(self._cgi)

    def has_document(self, path: str) -> bool:
        return self._norm(path) in self._documents

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def bytes_served(self) -> float:
        return self._bytes_served

    def refresh_link_speed(self) -> None:
        """Re-derive the service cap after the host NIC was upgraded."""
        wire = self.network.host(self.host).tx.capacity or 0.0
        self.service_link.capacity = wire * self.efficiency or None

    def configure_admission(self, config: Optional[AdmissionConfig]) -> None:
        """Install (or clear, with ``None``) the admission-control policy.

        Must not be changed while requests are queued — the queued slots
        were admitted under the old policy.
        """
        if self._accept_queue:
            raise RuntimeError("cannot reconfigure admission with queued requests")
        self.admission = config
        if config is not None and config.retry_jitter > 0:
            self._retry_rng = random.Random(
                ("retry-after", self.host, config.jitter_seed).__repr__()
            )
        else:
            self._retry_rng = None

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        return len(self._accept_queue)

    @property
    def rejected(self) -> int:
        """Requests shed with a 503 by admission control (full or timed out)."""
        return self._rejected

    @property
    def queue_timeouts(self) -> int:
        """Requests that gave up waiting in the accept queue."""
        return self._queue_timeouts

    def admission_stats(self) -> dict:
        """The admission-control gauges as one snapshot dict.

        This is the single source of truth the monitoring agents sample;
        the keys mirror the ``http.*`` names in the telemetry metrics
        registry so both views always agree.
        """
        return {
            "in_flight": self._in_flight,
            "queue_depth": len(self._accept_queue),
            "rejected": self._rejected,
            "queue_timeouts": self._queue_timeouts,
            "requests_served": self._requests_served,
            "bytes_served": self._bytes_served,
        }

    def abort_transfers(self) -> None:
        """Reset every in-flight connection (the daemon was killed)."""
        for flow in self.network.flows.flows_through(self.service_link):
            flow.cancel()
        self._flush_accept_queue("connection reset")

    # -- request path -------------------------------------------------------
    def get(
        self, client: str, path: str, max_rate: Optional[float] = None,
        parent=None,
    ) -> Process:
        """GET ``path`` from ``client``; yields an HttpResponse process.

        ``parent`` (a tracer span) threads trace context: the request's
        ``http`` span — and everything under it — parents on the caller.
        """
        return self.network.env.process(
            self._do_get(client, self._norm(path), max_rate, parent),
            name=f"GET {path} {client}<-{self.host}",
        )

    def _do_get(self, client: str, path: str, max_rate: Optional[float],
                parent=None):
        tracer = self.network.env.tracer
        span = (
            tracer.span("http", path, parent=parent,
                        client=client, server=self.host)
            if tracer.enabled
            else None
        )
        admitted = False
        try:
            try:
                if not self.running:
                    raise HttpError(
                        503, f"server {self.host} not running", server=self.host
                    )
                if not self.network.reachable(self.host, client):
                    raise HttpError(
                        504,
                        f"no route from {client} to {self.host}",
                        server=self.host,
                    )
                if self.admission is not None:
                    # May suspend in the accept queue; raises a 503 with a
                    # Retry-After hint when the request is shed.  With no
                    # admission policy this branch adds zero sim events.
                    yield from self._admit(client, path, span)
                    admitted = True
                body: Any = None
                if path in self._cgi:
                    body, size = self._cgi[path](client, path)
                elif path in self._documents:
                    size = self._documents[path]
                else:
                    raise HttpError(
                        404, f"{path} not found on {self.host}", server=self.host
                    )
            except HttpError as err:
                if span is not None:
                    span.end(outcome="error", status=err.status)
                raise
            wire_path = self.network.path(self.host, client)
            flow = self.network.flows.transfer(
                (self.service_link,) + wire_path,
                size,
                max_rate=max_rate,
                label=f"http:{path}",
                parent=span,
            )
            try:
                yield flow.done
            except Interrupt:
                # The requester died (e.g. node power-cycled mid-download):
                # tear the connection down so bandwidth is freed immediately.
                flow.cancel()
                if span is not None:
                    span.end(outcome="aborted")
                raise
            except BaseException:
                # Connection reset from the transfer side (cancelled flow).
                if span is not None:
                    span.end(outcome="reset")
                raise
            self._requests_served += 1
            self._bytes_served += size
            if span is not None:
                span.end(outcome="ok", status=200, bytes=float(size))
                tracer.metrics.inc(f"http.requests/{self.host}")
                tracer.metrics.inc(f"http.bytes/{self.host}", size)
            return HttpResponse(200, path, size, body=body, server=self.host)
        finally:
            if admitted:
                self._release()

    # -- admission control --------------------------------------------------
    def _admit(self, client: str, path: str, span=None):
        """Claim an in-flight slot, queueing (bounded) when at capacity.

        Raises ``HttpError(503)`` with a Retry-After hint when the accept
        queue is full, the queue wait times out, or the daemon dies while
        the request is parked.  Time parked in the queue is traced as an
        ``http-queue`` span under ``span`` (the request's ``http`` span).
        """
        adm = self.admission
        env = self.network.env
        if self._in_flight < adm.max_concurrent and not self._accept_queue:
            self._in_flight += 1
            self._gauge_in_flight()
            return
        if len(self._accept_queue) >= adm.queue_limit:
            self._shed(client, path, "queue-full")
        slot = env.event()
        self._accept_queue.append(slot)
        self._gauge_queue_depth()
        queue_span = (
            env.tracer.span("http-queue", path, parent=span,
                            client=client, server=self.host)
            if env.tracer.enabled
            else None
        )
        timer = env.timeout(adm.queue_timeout)
        try:
            yield AnyOf(env, (slot, timer))
        except Interrupt:
            if queue_span is not None:
                queue_span.end(outcome="aborted")
            if slot in self._accept_queue:
                self._accept_queue.remove(slot)
                self._gauge_queue_depth()
            else:
                # A releaser granted the slot before the interrupt landed.
                self._release()
            raise
        except HttpError:
            # The queue was flushed (daemon killed): the slot failed with
            # the shedding 503.  The timer is still pending — defuse it.
            if queue_span is not None:
                queue_span.end(outcome="flushed")
            env.cancel(timer)
            raise
        if slot in self._accept_queue:
            # Queue membership is the single source of truth for grant vs
            # timeout: a releaser pops the slot *before* succeeding it, so
            # still-queued here means the wait timed out.
            self._accept_queue.remove(slot)
            self._gauge_queue_depth()
            self._queue_timeouts += 1
            if queue_span is not None:
                queue_span.end(outcome="timeout")
            if env.tracer.enabled:
                env.tracer.metrics.inc(f"http.queue_timeouts/{self.host}")
            self._shed(client, path, "queue-timeout")
        # Granted: the releaser already counted this request in-flight.
        if queue_span is not None:
            queue_span.end(outcome="admitted")
        env.cancel(timer)

    def _retry_hint(self) -> Optional[float]:
        """The Retry-After this shed response advertises (jittered).

        Each call draws fresh jitter, so simultaneous victims of one
        overload spike are told different comeback times and their
        retries arrive desynchronized.
        """
        adm = self.admission
        if adm is None:
            return None
        hint = adm.retry_after
        if self._retry_rng is not None:
            hint *= 1.0 + adm.retry_jitter * self._retry_rng.random()
        return hint

    def _shed(self, client: str, path: str, cause: str) -> None:
        self._rejected += 1
        tracer = self.network.env.tracer
        if tracer.enabled:
            tracer.metrics.inc(f"http.rejected/{self.host}")
            tracer.event(
                "http-reject",
                path,
                client=client,
                server=self.host,
                cause=cause,
            )
        raise HttpError(
            503,
            f"server {self.host} at capacity ({cause})",
            retry_after=self._retry_hint(),
            server=self.host,
        )

    def _release(self) -> None:
        """Free an in-flight slot and promote queued requests under the cap."""
        self._in_flight -= 1
        adm = self.admission
        promoted = False
        while (
            adm is not None
            and self._accept_queue
            and self._in_flight < adm.max_concurrent
        ):
            slot = self._accept_queue.popleft()
            self._in_flight += 1
            promoted = True
            slot.succeed()
        self._gauge_in_flight()
        if promoted:
            self._gauge_queue_depth()

    def _flush_accept_queue(self, reason: str) -> None:
        """Fail every queued request (the daemon died while they waited)."""
        if not self._accept_queue:
            return
        queued, self._accept_queue = list(self._accept_queue), deque()
        self._gauge_queue_depth()
        tracer = self.network.env.tracer
        for slot in queued:
            self._rejected += 1
            if tracer.enabled:
                # Mirror _shed's accounting so the http.rejected counter,
                # the http-reject event count, and self.rejected agree no
                # matter which path shed the request.
                tracer.metrics.inc(f"http.rejected/{self.host}")
                tracer.event(
                    "http-reject", "*", client="", server=self.host,
                    cause=reason,
                )
            slot.fail(
                HttpError(
                    503,
                    f"server {self.host} {reason}",
                    retry_after=self._retry_hint(),
                    server=self.host,
                )
            )

    def _gauge_queue_depth(self) -> None:
        tracer = self.network.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge(
                f"http.queue_depth/{self.host}", float(len(self._accept_queue))
            )

    def _gauge_in_flight(self) -> None:
        tracer = self.network.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge(
                f"http.in_flight/{self.host}", float(self._in_flight)
            )

    @staticmethod
    def _norm(path: str) -> str:
        return "/" + path.strip("/")


class LoadBalancer:
    """Round-robin HTTP load balancing across replicated install servers.

    The paper notes replicating the install web server is trivial because
    serving RPMs is strictly read-only; this class provides the client-side
    view of N replicas behind one name.

    Membership is dynamic: an autoscaler may :meth:`add_backend` and
    :meth:`remove_backend` replicas while requests are in flight.  The
    rotation pointer is index-based (not a frozen cycle) and advances
    exactly once per request, so backends that are down, unreachable, or
    vetoed by the avoidance hook are *skipped deterministically* — a
    skip neither consumes a failover attempt nor perturbs which backend
    the next request starts from.
    """

    def __init__(self, servers: list[HttpServer]):
        if not servers:
            raise ValueError("load balancer needs at least one backend")
        self.servers = list(servers)
        self._rr_next = 0
        #: Optional predicate consulted before dispatch; a circuit breaker
        #: plugs in here to keep requests off backends it has opened on.
        self.should_avoid: Optional[Callable[[HttpServer], bool]] = None
        #: requests actually dispatched to a backend (skips excluded)
        self.dispatches = 0
        #: backends passed over pre-dispatch (down/unreachable/avoided)
        self.skips = 0

    # -- membership --------------------------------------------------------
    def add_backend(self, server: HttpServer) -> None:
        """Put a (replica) server into the rotation."""
        if server in self.servers:
            raise ValueError(f"backend {server.host} already registered")
        self.servers.append(server)

    def remove_backend(self, server: HttpServer) -> None:
        """Drop a server from the rotation; in-flight requests finish.

        The rotation pointer is re-anchored so the remaining backends
        keep their relative order — removal never skips or double-serves
        a backend.
        """
        try:
            idx = self.servers.index(server)
        except ValueError:
            raise ValueError(f"backend {server.host} not registered") from None
        if len(self.servers) == 1:
            raise ValueError("cannot remove the last backend")
        del self.servers[idx]
        if idx < self._rr_next:
            self._rr_next -= 1
        self._rr_next %= len(self.servers)

    def _rotation(self) -> list[HttpServer]:
        """This request's candidate order; advances the pointer by one."""
        n = len(self.servers)
        start = self._rr_next % n
        self._rr_next = (start + 1) % n
        return [self.servers[(start + k) % n] for k in range(n)]

    def get(
        self, client: str, path: str, max_rate: Optional[float] = None,
        parent=None,
    ) -> Process:
        """GET with failover: retries the next live backend on a 503/504."""
        env = self.servers[0].network.env
        return env.process(
            self._do_get(client, path, max_rate, parent),
            name=f"LB GET {path} {client}",
        )

    def _do_get(self, client: str, path: str, max_rate: Optional[float],
                parent=None):
        last_error: Optional[HttpError] = None
        avoided = 0
        for server in self._rotation():
            if not server.running:
                self.skips += 1
                continue
            if not server.network.reachable(server.host, client):
                self.skips += 1
                continue
            if self.should_avoid is not None and self.should_avoid(server):
                avoided += 1
                self.skips += 1
                continue
            self.dispatches += 1
            request = server.get(client, path, max_rate=max_rate,
                                 parent=parent)
            try:
                response = yield request
            except Interrupt:
                if request.is_alive:
                    request.interrupt("request aborted")
                raise
            except HttpError as err:
                if err.status not in (503, 504):
                    raise  # 4xx means the backend is healthy; don't fail over
                last_error = err
                continue
            return response
        if last_error is not None:
            # Every dispatchable backend was tried and shed/crashed.
            raise last_error
        if avoided:
            # Live backends exist but the avoidance hook (circuit breaker)
            # vetoed them all: fast-fail without touching the network.
            raise HttpError(503, "all live backends avoided")
        # All backends down pre-dispatch: surface the first one's error.
        self.dispatches += 1
        request = self.servers[0].get(client, path, max_rate=max_rate,
                                      parent=parent)
        try:
            return (yield request)
        except Interrupt:
            if request.is_alive:
                request.interrupt("request aborted")
            raise
