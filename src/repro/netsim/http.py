"""Minimal HTTP layer on top of the fluid-flow network.

Rocks pulls everything over HTTP: compute nodes fetch their generated
Kickstart file from a CGI script and then pull every RPM from the install
server.  We model an HTTP server as

* a document tree mapping URL paths to byte sizes (static resources),
* optional *CGI handlers* whose response body is computed per-request
  (this is how the Kickstart generator is wired in), and
* a protocol-efficiency factor: the paper observes a 100 Mbit server
  sustains 7-8 MB/s of useful payload, i.e. ~70% of wire speed, so each
  server throttles its aggregate payload rate through a virtual link.

Replicated servers plus :class:`LoadBalancer` model the paper's
"N web servers support N times the concurrent reinstallations" argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .engine import Environment, Interrupt, Process
from .flows import Link
from .topology import Network

__all__ = [
    "HttpServer",
    "HttpResponse",
    "HttpError",
    "LoadBalancer",
    "DEFAULT_HTTP_EFFICIENCY",
]

#: Fraction of wire speed an HTTP server can turn into payload (paper §6.3).
DEFAULT_HTTP_EFFICIENCY = 0.70


class HttpError(Exception):
    """An HTTP-level failure, carrying a status code."""

    def __init__(self, status: int, reason: str):
        super().__init__(f"{status} {reason}")
        self.status = status
        self.reason = reason


@dataclass
class HttpResponse:
    """Outcome of a GET: status, payload size, optional computed body.

    ``checksum`` is filled in by content-aware layers (the install
    server stamps each RPM's payload digest); empty means unverifiable.
    """

    status: int
    path: str
    size: float
    body: Any = None
    server: str = ""
    checksum: str = ""


CgiHandler = Callable[[str, str], tuple[Any, float]]
"""CGI callable: (client_host_name, path) -> (body, body_size_bytes)."""


class HttpServer:
    """An HTTP daemon bound to a host on a :class:`Network`."""

    def __init__(
        self,
        network: Network,
        host: str,
        efficiency: float = DEFAULT_HTTP_EFFICIENCY,
    ):
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency!r}")
        self.network = network
        self.host = host
        self.efficiency = efficiency
        link = network.host(host).tx
        # Virtual service link: caps aggregate *payload* below wire speed.
        self.service_link = Link(
            f"{host}.http", (link.capacity or 0.0) * efficiency or None
        )
        self._documents: dict[str, float] = {}
        self._cgi: dict[str, CgiHandler] = {}
        self._requests_served = 0
        self._bytes_served = 0.0
        self.running = True

    # -- content management ----------------------------------------------
    def publish(self, path: str, size: float) -> None:
        """Expose a static resource of ``size`` bytes at ``path``."""
        if size < 0:
            raise ValueError("resource size must be non-negative")
        self._documents[self._norm(path)] = float(size)

    def publish_tree(self, tree: dict[str, float], prefix: str = "") -> None:
        for path, size in tree.items():
            self.publish(prefix + path, size)

    def unpublish(self, path: str) -> None:
        self._documents.pop(self._norm(path), None)

    def register_cgi(self, path: str, handler: CgiHandler) -> None:
        """Mount a CGI script (e.g. the kickstart generator) at ``path``."""
        self._cgi[self._norm(path)] = handler

    def has_document(self, path: str) -> bool:
        return self._norm(path) in self._documents

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def bytes_served(self) -> float:
        return self._bytes_served

    def refresh_link_speed(self) -> None:
        """Re-derive the service cap after the host NIC was upgraded."""
        wire = self.network.host(self.host).tx.capacity or 0.0
        self.service_link.capacity = wire * self.efficiency or None

    def abort_transfers(self) -> None:
        """Reset every in-flight connection (the daemon was killed)."""
        for flow in list(self.network.flows._flows):
            if self.service_link in flow.path:
                flow.cancel()

    # -- request path -------------------------------------------------------
    def get(
        self, client: str, path: str, max_rate: Optional[float] = None
    ) -> Process:
        """GET ``path`` from ``client``; yields an HttpResponse process."""
        return self.network.env.process(
            self._do_get(client, self._norm(path), max_rate),
            name=f"GET {path} {client}<-{self.host}",
        )

    def _do_get(self, client: str, path: str, max_rate: Optional[float]):
        tracer = self.network.env.tracer
        span = (
            tracer.span("http", path, client=client, server=self.host)
            if tracer.enabled
            else None
        )
        try:
            if not self.running:
                raise HttpError(503, f"server {self.host} not running")
            if not self.network.reachable(self.host, client):
                raise HttpError(504, f"no route from {client} to {self.host}")
            body: Any = None
            if path in self._cgi:
                body, size = self._cgi[path](client, path)
            elif path in self._documents:
                size = self._documents[path]
            else:
                raise HttpError(404, f"{path} not found on {self.host}")
        except HttpError as err:
            if span is not None:
                span.end(outcome="error", status=err.status)
            raise
        wire_path = self.network.path(self.host, client)
        flow = self.network.flows.transfer(
            (self.service_link,) + wire_path,
            size,
            max_rate=max_rate,
            label=f"http:{path}",
        )
        try:
            yield flow.done
        except Interrupt:
            # The requester died (e.g. node power-cycled mid-download):
            # tear the connection down so bandwidth is freed immediately.
            flow.cancel()
            if span is not None:
                span.end(outcome="aborted")
            raise
        except BaseException:
            # Connection reset from the transfer side (cancelled flow).
            if span is not None:
                span.end(outcome="reset")
            raise
        self._requests_served += 1
        self._bytes_served += size
        if span is not None:
            span.end(outcome="ok", status=200, bytes=float(size))
            tracer.metrics.inc(f"http.requests/{self.host}")
            tracer.metrics.inc(f"http.bytes/{self.host}", size)
        return HttpResponse(200, path, size, body=body, server=self.host)

    @staticmethod
    def _norm(path: str) -> str:
        return "/" + path.strip("/")


class LoadBalancer:
    """Round-robin HTTP load balancing across replicated install servers.

    The paper notes replicating the install web server is trivial because
    serving RPMs is strictly read-only; this class provides the client-side
    view of N replicas behind one name.
    """

    def __init__(self, servers: list[HttpServer]):
        if not servers:
            raise ValueError("load balancer needs at least one backend")
        self.servers = list(servers)
        self._rr = itertools.cycle(range(len(self.servers)))

    def get(
        self, client: str, path: str, max_rate: Optional[float] = None
    ) -> Process:
        """Dispatch a GET to the next live backend (skipping dead ones)."""
        for _ in range(len(self.servers)):
            server = self.servers[next(self._rr)]
            if server.running and server.network.reachable(server.host, client):
                return server.get(client, path, max_rate=max_rate)
        # All backends down: let the first raise its error inside a process.
        return self.servers[0].get(client, path, max_rate=max_rate)
