"""Best-effort UDP multicast on a switched Ethernet segment.

Ganglia's gmond publishes metric packets to a well-known multicast
address and every listener on the segment receives them — no
connections, no acknowledgements, no retransmits.  This module models
exactly that on the :class:`~repro.netsim.topology.Network`: a
:class:`MulticastGroup` is a named address with a subscriber list, and
``send()`` delivers a datagram to every subscriber whose host link is
up, silently dropping the rest (that *is* UDP's contract, and it is
what makes staleness detection on the receiver meaningful).

Delivery is synchronous and insertion-ordered: a 100-byte heartbeat
crosses a switched LAN in microseconds, far below the one-second
resolution anything in this simulation cares about, so modelling the
datagram as a timed flow would buy nothing but event-queue pressure.
Determinism falls out of the ordering — subscribers are an
insertion-ordered dict, never a hash set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # avoid a cycle: topology imports this module lazily
    from .topology import Network

__all__ = ["MulticastGroup", "Datagram"]

#: payload accounting granularity: a compact metric packet on the wire
DEFAULT_DATAGRAM_BYTES = 128.0

#: Receiver callback: fn(src_host, payload, sim_time).
Receiver = Callable[[str, Any, float], None]


class Datagram:
    """One delivered multicast packet (what a receiver callback gets)."""

    __slots__ = ("src", "payload", "t")

    def __init__(self, src: str, payload: Any, t: float):
        self.src = src
        self.payload = payload
        self.t = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Datagram(from={self.src!r}, t={self.t:.1f})"


class MulticastGroup:
    """A multicast address on one network segment, with its listeners.

    Obtain one via :meth:`Network.multicast`; the network caches groups
    by address so every publisher and subscriber shares the same one.
    """

    def __init__(self, network: "Network", address: str):
        self.network = network
        self.address = address
        # host name -> callback; insertion-ordered for determinism.
        self._subscribers: dict[str, Receiver] = {}
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    # -- membership ----------------------------------------------------------
    def join(self, host: str, receive: Receiver) -> None:
        """Subscribe ``host`` (by network name); one callback per host."""
        self._subscribers[host] = receive

    def leave(self, host: str) -> None:
        self._subscribers.pop(host, None)

    @property
    def n_subscribers(self) -> int:
        return len(self._subscribers)

    # -- datagrams ----------------------------------------------------------
    def send(
        self,
        src: str,
        payload: Any,
        nbytes: float = DEFAULT_DATAGRAM_BYTES,
    ) -> int:
        """Publish one datagram from ``src``; returns listeners reached.

        A sender whose link is down reaches nobody; a subscriber whose
        link is down hears nothing.  Lost packets are counted, not
        retried — the aggregator's staleness logic is the recovery path.
        Payload bytes are credited to the NIC byte counters (sender tx,
        each remote receiver's rx) so monitoring traffic is visible in
        the same accounting as everything else.
        """
        network = self.network
        self.packets_sent += 1
        if not network.has_host(src) or not network.host(src).up:
            self.packets_dropped += len(self._subscribers)
            return 0
        now = network.env.now
        delivered = 0
        sender = network.host(src)
        for host, receive in list(self._subscribers.items()):
            if not network.has_host(host) or not network.host(host).up:
                self.packets_dropped += 1
                continue
            if host != src:
                network.host(host).rx.bytes_carried += nbytes
            delivered += 1
            receive(src, payload, now)
        if delivered:
            sender.tx.bytes_carried += nbytes
        self.packets_delivered += delivered
        return delivered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MulticastGroup({self.address!r}, "
            f"{len(self._subscribers)} subscribers)"
        )
