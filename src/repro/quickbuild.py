"""High-level convenience API: build and drive a whole Rocks cluster.

This wraps the full stack — hardware, frontend, services, insert-ethers
— behind the workflow a Rocks administrator actually follows (§7):

1. install the frontend from CD (``build_cluster`` does this);
2. run insert-ethers and boot compute nodes one at a time with the same
   CD (:meth:`RocksCluster.integrate_all`);
3. manage thereafter by reinstalling (:meth:`RocksCluster.reinstall_all`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .cluster import ClusterHardware, Machine, MachineState
from .core.frontend import FrontendConfig, RocksFrontend
from .core.tools import InsertEthers, ShootReport, shoot_nodes
from .installer import DEFAULT_CALIBRATION, InstallCalibration
from .netsim import AllOf, Environment, SimulationError
from .rpm import Repository
from .telemetry import Tracer

__all__ = ["RocksCluster", "build_cluster"]


@dataclass
class RocksCluster:
    """A running simulation: environment, hardware, frontend, nodes."""

    env: Environment
    hardware: ClusterHardware
    frontend: RocksFrontend
    nodes: list[Machine] = field(default_factory=list)
    insert_ethers: Optional[InsertEthers] = None

    # -- node integration (§6.4) ---------------------------------------------------
    def add_compute_nodes(self, n: int, model: str = "pIII-733-myri") -> list[Machine]:
        """Rack new hardware (powered off, not yet in the database)."""
        new = []
        for _ in range(n):
            machine = self.hardware.add_machine(model)
            self.frontend.adopt(machine)
            new.append(machine)
        self.nodes.extend(new)
        return new

    def integrate_all(
        self,
        membership: str = "Compute",
        wait_until_up: bool = True,
        per_node_deadline: float = 3600.0,
    ) -> list[str]:
        """Run insert-ethers and boot un-integrated nodes sequentially.

        Sequential boot order is what binds (rack, rank) to physical
        position (§6.4 footnote).  Installations themselves overlap.
        Returns the assigned hostnames, in order.
        """
        if self.insert_ethers is None:
            self.insert_ethers = InsertEthers(
                self.frontend, membership=membership
            ).start()
        ie = self.insert_ethers
        named = []
        for machine in self.nodes:
            if self.frontend.db.has_mac(machine.mac):
                continue
            machine.power_on()
            deadline = self.env.now + per_node_deadline
            while not self.frontend.db.has_mac(machine.mac):
                if self.env.peek() == float("inf") or self.env.now > deadline:
                    raise SimulationError(
                        f"{machine.mac} was never integrated (is dhcpd/"
                        "syslog running and insert-ethers listening?)"
                    )
                self.env.step()
            named.append(machine.hostid)
        if wait_until_up:
            # One barrier over every pending boot, not a serial per-host
            # wait: integration time stays ~max(node), not ~sum(node).
            pending = [
                machine.wait_for_state(MachineState.UP)
                for machine in self.nodes
                if machine.state is not MachineState.UP
            ]
            if pending:
                self.env.run(until=AllOf(self.env, pending))
        return named

    # -- the management primitive (§5): reinstall ---------------------------------------
    def reinstall_all(
        self, machines: Optional[Sequence[Machine]] = None
    ) -> list[ShootReport]:
        """Concurrently reinstall nodes via shoot-node; returns reports."""
        targets = list(machines) if machines is not None else list(self.nodes)
        tracer = self.env.tracer
        # Root span for the whole mass reinstall: every per-node install
        # (and everything under it) parents here, so `repro explain` can
        # walk one causality tree for the §6.3 experiment.
        span = (
            tracer.span("reinstall", f"x{len(targets)}", nodes=len(targets))
            if tracer.enabled
            else None
        )
        proc = shoot_nodes(self.frontend, targets, parent=span)
        reports = self.env.run(until=proc)
        if span is not None:
            span.end(ok=sum(1 for r in reports if r.ok))
        return reports

    def machine(self, name: str) -> Machine:
        return self.hardware.by_name(name)

    @property
    def db(self):
        return self.frontend.db


def build_cluster(
    n_compute: int = 4,
    compute_model: str = "pIII-733-myri",
    config: Optional[FrontendConfig] = None,
    calibration: InstallCalibration = DEFAULT_CALIBRATION,
    stock: Optional[Repository] = None,
    updates: Optional[Repository] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> RocksCluster:
    """Stand up a frontend (installed, services running) plus racked nodes.

    The returned cluster's compute nodes are still powered off and
    anonymous — call :meth:`RocksCluster.integrate_all` to adopt them.
    Passing a :class:`~repro.telemetry.Tracer` attaches it before any
    service starts, so the trace covers frontend bring-up too.
    """
    env = Environment()
    if tracer is not None:
        tracer.attach(env)
    hardware = ClusterHardware(env, seed=seed)
    if config is None:
        config = FrontendConfig(calibration=calibration)
    else:
        config.calibration = calibration
    frontend = RocksFrontend(env, hardware, config, stock=stock, updates=updates)
    frontend.install_from_cd()
    sim = RocksCluster(env=env, hardware=hardware, frontend=frontend)
    sim.add_compute_nodes(n_compute, model=compute_model)
    return sim
