"""The DHCP server: MAC-to-IP bindings driven by the cluster database.

"For configuring Ethernet devices on compute nodes, the Dynamic Host
Configuration Protocol (DHCP) is essential" (§5).  The Rocks dhcpd is
configured entirely from a database report (``/etc/dhcpd.conf``), and
unknown MACs broadcasting DHCPDISCOVER are what insert-ethers watches
syslog for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netsim import Environment
from .base import Service, ServiceError
from .syslogd import Syslog

__all__ = ["DhcpServer", "DhcpBinding", "DhcpLease"]


@dataclass(frozen=True)
class DhcpBinding:
    """A static host entry in dhcpd.conf."""

    mac: str
    ip: str
    hostname: str


@dataclass(frozen=True)
class DhcpLease:
    """What a client gets back from DISCOVER/REQUEST."""

    mac: str
    ip: str
    hostname: str
    next_server: str  # install server for kickstart, paper §6.1
    granted_at: float


class DhcpServer(Service):
    """dhcpd with static bindings; logs every DISCOVER to syslog."""

    def __init__(
        self,
        env: Environment,
        syslog: Syslog,
        server_host: str,
        next_server: Optional[str] = None,
        name: str = "dhcpd",
    ):
        super().__init__(name)
        self.env = env
        self.syslog = syslog
        self.server_host = server_host
        self.next_server = next_server or server_host
        self._bindings: dict[str, DhcpBinding] = {}
        self.discover_count = 0
        self.unknown_macs_seen: list[str] = []

    # -- configuration -----------------------------------------------------
    def load_bindings(self, bindings: list[DhcpBinding], config_text: str = "") -> None:
        """Replace the binding table (a fresh dhcpd.conf from the DB)."""
        self._bindings = {b.mac: b for b in bindings}
        if config_text:
            self.configure(config_text)

    def binding_for(self, mac: str) -> Optional[DhcpBinding]:
        return self._bindings.get(mac)

    @property
    def n_bindings(self) -> int:
        return len(self._bindings)

    # -- protocol ----------------------------------------------------------
    def discover(self, mac: str) -> Optional[DhcpLease]:
        """Handle a client broadcast.

        Known MAC: returns a lease.  Unknown MAC: returns None, but the
        DHCPDISCOVER line lands in syslog — which is precisely the event
        insert-ethers integrates new nodes from.
        """
        self.require_running()
        self.discover_count += 1
        self.syslog.log(
            "dhcpd",
            self.server_host,
            f"DHCPDISCOVER from {mac} via eth0",
        )
        binding = self._bindings.get(mac)
        if binding is None:
            self.unknown_macs_seen.append(mac)
            self.syslog.log(
                "dhcpd",
                self.server_host,
                f"no free leases for unknown host {mac}",
            )
            return None
        lease = DhcpLease(
            mac=binding.mac,
            ip=binding.ip,
            hostname=binding.hostname,
            next_server=self.next_server,
            granted_at=self.env.now,
        )
        self.syslog.log(
            "dhcpd",
            self.server_host,
            f"DHCPACK on {binding.ip} to {mac} ({binding.hostname})",
        )
        return lease
