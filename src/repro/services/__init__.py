"""Simulated cluster services: syslog, DHCP, HTTP install server, NIS, NFS."""

from .base import Faultable, Service, ServiceError, ServiceState
from .monitor import (
    ClusterMonitor,
    HeartbeatMetrics,
    MonitorDaemon,
    enable_monitoring,
)
from .dhcpd import DhcpBinding, DhcpLease, DhcpServer
from .httpd import KICKSTART_CGI_PATH, InstallReplicaSet, InstallServer, rpms_prefix
from .nfs import NfsMount, NfsServer, StaleFileHandle
from .nis import NisClient, NisDomain, UserAccount
from .syslogd import Syslog, SyslogMessage

__all__ = [
    "Faultable",
    "Service",
    "ClusterMonitor",
    "HeartbeatMetrics",
    "MonitorDaemon",
    "enable_monitoring",
    "ServiceError",
    "ServiceState",
    "DhcpBinding",
    "DhcpLease",
    "DhcpServer",
    "KICKSTART_CGI_PATH",
    "InstallReplicaSet",
    "InstallServer",
    "rpms_prefix",
    "NfsMount",
    "NfsServer",
    "StaleFileHandle",
    "NisClient",
    "NisDomain",
    "UserAccount",
    "Syslog",
    "SyslogMessage",
]


def __getattr__(name: str):
    # Deprecated: ``Metrics`` here is the heartbeat payload, renamed to
    # HeartbeatMetrics; the monitor module's shim owns the warning.
    if name == "Metrics":
        from . import monitor

        return monitor.Metrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
