"""The frontend's syslog daemon — insert-ethers's event source.

"Insert-ethers monitors syslog messages for DHCP requests from new
hosts" (§6.4).  We model syslog as a subscribable message bus: the DHCP
server logs DHCPDISCOVER lines here; insert-ethers subscribes and reacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim import Environment
from .base import Service

__all__ = ["Syslog", "SyslogMessage"]


@dataclass(frozen=True)
class SyslogMessage:
    """One log line: simulated time, facility, originating host, text."""

    time: float
    facility: str
    host: str
    text: str

    def __str__(self) -> str:
        return f"{self.time:10.1f} {self.host} {self.facility}: {self.text}"


Subscriber = Callable[[SyslogMessage], None]


class Syslog(Service):
    """An append-only message log with live subscribers."""

    def __init__(self, env: Environment, name: str = "syslogd"):
        super().__init__(name)
        self.env = env
        self.messages: list[SyslogMessage] = []
        self._subscribers: list[tuple[Optional[str], Subscriber]] = []
        self.start()

    def log(self, facility: str, host: str, text: str) -> SyslogMessage:
        """Append a message and fan it out to matching subscribers."""
        msg = SyslogMessage(self.env.now, facility, host, text)
        if not self.running:
            return msg  # syslog down: messages are simply lost
        self.messages.append(msg)
        for wanted_facility, callback in list(self._subscribers):
            if wanted_facility is None or wanted_facility == facility:
                callback(msg)
        return msg

    def subscribe(
        self, callback: Subscriber, facility: Optional[str] = None
    ) -> Callable[[], None]:
        """Register a live listener; returns an unsubscribe function."""
        entry = (facility, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    def grep(self, needle: str, facility: Optional[str] = None) -> list[SyslogMessage]:
        """Search the log (what an admin would do with grep)."""
        return [
            m
            for m in self.messages
            if needle in m.text and (facility is None or m.facility == facility)
        ]
