"""The install web server.

"For installation, compute nodes use Kickstart's HTTP method to pull
RPMs across the network" (§5).  This wraps the netsim HTTP layer with
distribution publishing: a repository's packages appear under
``/install/<dist>/RedHat/RPMS/<filename>`` and the kickstart CGI is
mounted at ``/install/kickstart.cgi`` — the URL layout of a real Rocks
frontend.  Replication for load balancing (§6.3) reuses
:class:`repro.netsim.LoadBalancer`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from ..netsim import (
    DEFAULT_HTTP_EFFICIENCY,
    Environment,
    HttpServer,
    Interrupt,
    LoadBalancer,
    Network,
    Process,
)
from ..rpm import Package, Repository
from .base import Service

__all__ = [
    "InstallServer",
    "InstallReplicaSet",
    "rpms_prefix",
    "KICKSTART_CGI_PATH",
]

KICKSTART_CGI_PATH = "/install/kickstart.cgi"


def rpms_prefix(dist_name: str) -> str:
    """URL prefix for a distribution's binary packages."""
    return f"/install/{dist_name}/RedHat/RPMS"


class InstallServer(Service):
    """httpd on the frontend (or a replica), serving RPMs and kickstarts."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host: str,
        efficiency: float = DEFAULT_HTTP_EFFICIENCY,
    ):
        super().__init__(f"httpd/{host}")
        self.env = env
        self.host = host
        self.http = HttpServer(network, host, efficiency=efficiency)
        self._published: dict[str, dict[str, Package]] = {}
        #: fault-injection hook: (client, package) -> True to corrupt the
        #: payload the client receives (repro.faults installs this)
        self.corruption_hook: Optional[Callable[[str, Package], bool]] = None
        self.start()

    # -- lifecycle glue -------------------------------------------------------
    def _sync_runtime(self) -> None:
        self.http.running = self.running
        if not self.running:
            # A dead daemon resets its open connections: in-flight
            # downloads abort (and the installer's retry path kicks in).
            self.http.abort_transfers()

    # -- publishing --------------------------------------------------------------
    def publish_packages(
        self, dist_name: str, packages: Union[Repository, list[Package]]
    ) -> int:
        """Expose a package set as distribution ``dist_name``; returns count."""
        prefix = rpms_prefix(dist_name)
        index = self._published.setdefault(dist_name, {})
        n = 0
        for pkg in packages:
            self.http.publish(f"{prefix}/{pkg.filename}", pkg.size)
            index[pkg.filename] = pkg
            n += 1
        return n

    def unpublish_distribution(self, dist_name: str) -> None:
        prefix = rpms_prefix(dist_name)
        for filename in self._published.pop(dist_name, {}):
            self.http.unpublish(f"{prefix}/{filename}")

    def distributions(self) -> list[str]:
        return sorted(self._published)

    def package_index(self, dist_name: str) -> dict[str, Package]:
        """Filename -> package map for a published distribution."""
        return dict(self._published.get(dist_name, {}))

    def register_kickstart_cgi(self, handler) -> None:
        """Mount the kickstart generator at the canonical CGI path."""
        self.http.register_cgi(KICKSTART_CGI_PATH, handler)

    # -- client operations ----------------------------------------------------------
    def fetch_package(
        self,
        client: str,
        dist_name: str,
        pkg: Package,
        max_rate: Optional[float] = None,
        parent=None,
    ) -> Process:
        """GET one RPM (a process; yields the HttpResponse).

        The response carries the payload checksum the client actually
        received, so the installer can detect corrupted downloads.
        ``parent`` threads trace context down to the HTTP span.
        """
        return self.env.process(
            self._fetch_package(client, dist_name, pkg, max_rate, parent),
            name=f"GET {pkg.filename} {client}<-{self.host}",
        )

    def _fetch_package(
        self, client: str, dist_name: str, pkg: Package,
        max_rate: Optional[float], parent=None,
    ) -> Generator:
        get = self.http.get(
            client, f"{rpms_prefix(dist_name)}/{pkg.filename}",
            max_rate=max_rate, parent=parent,
        )
        try:
            resp = yield get
        except Interrupt:
            if get.is_alive:
                get.interrupt("fetch aborted")
            raise
        resp.checksum = pkg.checksum
        if self.corruption_hook is not None and self.corruption_hook(client, pkg):
            resp.checksum = f"corrupt:{pkg.checksum}"
        return resp

    def fetch_kickstart(self, client: str, parent=None) -> Process:
        return self.http.get(client, KICKSTART_CGI_PATH, parent=parent)

    @property
    def bytes_served(self) -> float:
        return self.http.bytes_served

    @property
    def requests_served(self) -> int:
        return self.http.requests_served


class InstallReplicaSet:
    """The primary install server plus elastic replicas behind one name.

    §6.3 of the paper notes replicating the install web server is
    trivial because serving RPMs is strictly read-only.  This class is
    the operational form of that observation: it satisfies the
    installer's ``InstallSource`` protocol (``fetch_kickstart`` /
    ``fetch_package``) by routing every request through a
    :class:`~repro.netsim.LoadBalancer`, and lets an autoscaler
    :meth:`add_replica` and :meth:`drain_replica` backends while
    requests are in flight.

    Replicas are full :class:`InstallServer` instances on their own
    simulated hosts (cloned NIC speed, published distributions, CGI
    mounts, and admission config), so each one brings real serving
    capacity.  Draining is graceful: a drained replica leaves the
    rotation immediately but keeps serving its in-flight transfers
    until :meth:`reap_drained` observes its service link idle.

    A ``should_avoid`` property (and deliberately *no* ``host``
    attribute) makes :class:`~repro.resilience.GuardedSource` treat the
    set as a balanced source and install its per-backend circuit
    breakers on the underlying balancer.
    """

    def __init__(self, primary: InstallServer):
        self.env = primary.env
        self.primary = primary
        self.network = primary.http.network
        self.balancer = LoadBalancer([primary.http])
        #: replicas currently in the rotation, oldest first
        self.replicas: list[InstallServer] = []
        self._draining: list[InstallServer] = []
        self._spawned = 0

    # -- balancer passthrough (GuardedSource wires breakers in here) -------
    @property
    def should_avoid(self):
        return self.balancer.should_avoid

    @should_avoid.setter
    def should_avoid(self, hook) -> None:
        self.balancer.should_avoid = hook

    @property
    def n_backends(self) -> int:
        """Backends in the rotation (primary + active replicas)."""
        return len(self.balancer.servers)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    # -- elasticity --------------------------------------------------------
    def add_replica(self) -> InstallServer:
        """Spin up one replica and put it in the rotation.

        Replica host names are monotonic (``replica-1``, ``replica-2``,
        …) and never reused, so scale-up after scale-down cannot collide
        with a host still draining.
        """
        self._spawned += 1
        host = f"replica-{self._spawned}"
        speed = self.network.host(self.primary.host).speed
        self.network.attach(host, speed)
        replica = InstallServer(
            self.env,
            self.network,
            host,
            efficiency=self.primary.http.efficiency,
        )
        for dist in self.primary.distributions():
            replica.publish_packages(
                dist, list(self.primary.package_index(dist).values())
            )
        for path, handler in self.primary.http.cgi_mounts().items():
            replica.http.register_cgi(path, handler)
        if self.primary.http.admission is not None:
            replica.http.configure_admission(self.primary.http.admission)
        self.replicas.append(replica)
        self.balancer.add_backend(replica.http)
        return replica

    def drain_replica(self) -> Optional[InstallServer]:
        """Take the newest replica out of the rotation (LIFO).

        The primary is never drained.  Returns the draining replica, or
        ``None`` if there are no replicas left.
        """
        if not self.replicas:
            return None
        replica = self.replicas.pop()
        self.balancer.remove_backend(replica.http)
        self._draining.append(replica)
        return replica

    def reap_drained(self) -> list[InstallServer]:
        """Stop drained replicas whose last in-flight transfer finished."""
        reaped = []
        for replica in list(self._draining):
            if self.network.flows.flows_through(replica.http.service_link):
                continue
            replica.stop()
            self._draining.remove(replica)
            reaped.append(replica)
        return reaped

    @property
    def draining(self) -> list[InstallServer]:
        return list(self._draining)

    # -- InstallSource protocol --------------------------------------------
    def fetch_kickstart(self, client: str, parent=None) -> Process:
        return self.balancer.get(client, KICKSTART_CGI_PATH, parent=parent)

    def fetch_package(
        self,
        client: str,
        dist_name: str,
        pkg: Package,
        max_rate: Optional[float] = None,
        parent=None,
    ) -> Process:
        return self.env.process(
            self._fetch_package(client, dist_name, pkg, max_rate, parent),
            name=f"GET {pkg.filename} {client}<-replicaset",
        )

    def _fetch_package(
        self, client: str, dist_name: str, pkg: Package,
        max_rate: Optional[float], parent=None,
    ) -> Generator:
        get = self.balancer.get(
            client, f"{rpms_prefix(dist_name)}/{pkg.filename}",
            max_rate=max_rate, parent=parent,
        )
        try:
            resp = yield get
        except Interrupt:
            if get.is_alive:
                get.interrupt("fetch aborted")
            raise
        resp.checksum = pkg.checksum
        # Read the hook at fetch time: the fault injector installs it on
        # the primary after this set may already have been constructed.
        hook = self.primary.corruption_hook
        if hook is not None and hook(client, pkg):
            resp.checksum = f"corrupt:{pkg.checksum}"
        return resp

    @property
    def bytes_served(self) -> float:
        servers = [self.primary, *self.replicas, *self._draining]
        return sum(s.bytes_served for s in servers)

    @property
    def requests_served(self) -> int:
        servers = [self.primary, *self.replicas, *self._draining]
        return sum(s.requests_served for s in servers)
