"""The install web server.

"For installation, compute nodes use Kickstart's HTTP method to pull
RPMs across the network" (§5).  This wraps the netsim HTTP layer with
distribution publishing: a repository's packages appear under
``/install/<dist>/RedHat/RPMS/<filename>`` and the kickstart CGI is
mounted at ``/install/kickstart.cgi`` — the URL layout of a real Rocks
frontend.  Replication for load balancing (§6.3) reuses
:class:`repro.netsim.LoadBalancer`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from ..netsim import (
    DEFAULT_HTTP_EFFICIENCY,
    Environment,
    HttpServer,
    Interrupt,
    LoadBalancer,
    Network,
    Process,
)
from ..rpm import Package, Repository
from .base import Service

__all__ = ["InstallServer", "rpms_prefix", "KICKSTART_CGI_PATH"]

KICKSTART_CGI_PATH = "/install/kickstart.cgi"


def rpms_prefix(dist_name: str) -> str:
    """URL prefix for a distribution's binary packages."""
    return f"/install/{dist_name}/RedHat/RPMS"


class InstallServer(Service):
    """httpd on the frontend (or a replica), serving RPMs and kickstarts."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host: str,
        efficiency: float = DEFAULT_HTTP_EFFICIENCY,
    ):
        super().__init__(f"httpd/{host}")
        self.env = env
        self.host = host
        self.http = HttpServer(network, host, efficiency=efficiency)
        self._published: dict[str, dict[str, Package]] = {}
        #: fault-injection hook: (client, package) -> True to corrupt the
        #: payload the client receives (repro.faults installs this)
        self.corruption_hook: Optional[Callable[[str, Package], bool]] = None
        self.start()

    # -- lifecycle glue -------------------------------------------------------
    def _sync_runtime(self) -> None:
        self.http.running = self.running
        if not self.running:
            # A dead daemon resets its open connections: in-flight
            # downloads abort (and the installer's retry path kicks in).
            self.http.abort_transfers()

    # -- publishing --------------------------------------------------------------
    def publish_packages(
        self, dist_name: str, packages: Union[Repository, list[Package]]
    ) -> int:
        """Expose a package set as distribution ``dist_name``; returns count."""
        prefix = rpms_prefix(dist_name)
        index = self._published.setdefault(dist_name, {})
        n = 0
        for pkg in packages:
            self.http.publish(f"{prefix}/{pkg.filename}", pkg.size)
            index[pkg.filename] = pkg
            n += 1
        return n

    def unpublish_distribution(self, dist_name: str) -> None:
        prefix = rpms_prefix(dist_name)
        for filename in self._published.pop(dist_name, {}):
            self.http.unpublish(f"{prefix}/{filename}")

    def distributions(self) -> list[str]:
        return sorted(self._published)

    def package_index(self, dist_name: str) -> dict[str, Package]:
        """Filename -> package map for a published distribution."""
        return dict(self._published.get(dist_name, {}))

    def register_kickstart_cgi(self, handler) -> None:
        """Mount the kickstart generator at the canonical CGI path."""
        self.http.register_cgi(KICKSTART_CGI_PATH, handler)

    # -- client operations ----------------------------------------------------------
    def fetch_package(
        self,
        client: str,
        dist_name: str,
        pkg: Package,
        max_rate: Optional[float] = None,
    ) -> Process:
        """GET one RPM (a process; yields the HttpResponse).

        The response carries the payload checksum the client actually
        received, so the installer can detect corrupted downloads.
        """
        return self.env.process(
            self._fetch_package(client, dist_name, pkg, max_rate),
            name=f"GET {pkg.filename} {client}<-{self.host}",
        )

    def _fetch_package(
        self, client: str, dist_name: str, pkg: Package, max_rate: Optional[float]
    ) -> Generator:
        get = self.http.get(
            client, f"{rpms_prefix(dist_name)}/{pkg.filename}", max_rate=max_rate
        )
        try:
            resp = yield get
        except Interrupt:
            if get.is_alive:
                get.interrupt("fetch aborted")
            raise
        resp.checksum = pkg.checksum
        if self.corruption_hook is not None and self.corruption_hook(client, pkg):
            resp.checksum = f"corrupt:{pkg.checksum}"
        return resp

    def fetch_kickstart(self, client: str) -> Process:
        return self.http.get(client, KICKSTART_CGI_PATH)

    @property
    def bytes_served(self) -> float:
        return self.http.bytes_served

    @property
    def requests_served(self) -> int:
        return self.http.requests_served
