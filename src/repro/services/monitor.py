"""Cluster health monitoring (Ganglia-style heartbeats).

The paper's §2 credits SCE's "impressive web and VRML" monitoring and
§Acknowledgements the UC Berkeley Millennium group (Matt Massie — whose
Ganglia monitor Rocks shipped as ``ganglia-monitor-core``; it appears in
the community package list here too).  The model: every node runs a
monitor daemon multicasting a heartbeat plus a few metrics; the frontend
aggregates them and flags nodes whose heartbeats go stale — which is how
an administrator notices a node needs shoot-node in the first place.

Monitoring is *opt-in* (daemons are perpetual processes) — call
:func:`enable_monitoring` on a built cluster.

Since the :mod:`repro.monitoring` subsystem landed, this module is the
*legacy* path: when the full gmond/gmetad stack is enabled, the
:class:`ClusterMonitor` should consume its heartbeats instead of
running :class:`MonitorDaemon` loops of its own — one source of truth.
Call :meth:`ClusterMonitor.attach_source` with a
:class:`~repro.monitoring.MetricAggregator` (or pass ``source=`` to
:func:`enable_monitoring`): every agent packet is translated into a
legacy :class:`HeartbeatMetrics` heartbeat, and no daemons are spawned.  The
daemon path remains as the fallback when monitoring is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Machine, MachineState
from ..netsim import Environment
from .base import Service

__all__ = ["HeartbeatMetrics", "MonitorDaemon", "ClusterMonitor",
           "enable_monitoring"]


@dataclass(frozen=True)
class HeartbeatMetrics:
    """One heartbeat's payload."""

    host: str
    time: float
    state: str
    load: int  # running user processes
    packages: int
    kernel: Optional[str]
    install_count: int


class ClusterMonitor(Service):
    """The frontend-side aggregator (gmetad-ish)."""

    def __init__(self, env: Environment, heartbeat_seconds: float = 10.0):
        super().__init__("cluster-monitor")
        self.env = env
        self.heartbeat_seconds = heartbeat_seconds
        self._last: dict[str, HeartbeatMetrics] = {}
        #: Hosts we expect heartbeats from; a registered host that never
        #: beats reports age == inf and shows up in down_hosts().
        self._expected: set[str] = set()
        self.heartbeats_received = 0
        #: the MetricAggregator feeding us, when agent-fed (else None)
        self.source = None
        self.start()

    def expect(self, host: str) -> None:
        """Register a host the monitor should account for."""
        self._expected.add(host)

    def attach_source(self, aggregator) -> None:
        """Feed this monitor from a gmond/gmetad aggregator.

        Every :class:`~repro.monitoring.MetricPacket` the aggregator
        accepts is translated into a legacy :class:`HeartbeatMetrics` heartbeat,
        so ``age``/``down_hosts``/``report`` keep working against the
        single agent-fed source of truth — no :class:`MonitorDaemon`
        needed.  The aggregator only needs ``on_packet`` and packets
        with ``metric``/``label`` accessors (duck-typed to keep this
        module import-light).
        """
        self.source = aggregator
        aggregator.on_packet.append(self._consume_packet)

    def _consume_packet(self, packet) -> None:
        self.publish(
            HeartbeatMetrics(
                host=packet.host,
                time=packet.t,
                state=packet.label("state"),
                load=int(packet.metric("load")),
                packages=int(packet.metric("packages")),
                kernel=packet.label("kernel") or None,
                install_count=int(packet.metric("installs")),
            )
        )

    def expect_hosts(self, hosts) -> None:
        self._expected.update(hosts)

    def _known(self) -> set[str]:
        return self._expected | set(self._last)

    def publish(self, metrics: HeartbeatMetrics) -> None:
        if not self.running:
            return
        self._last[metrics.host] = metrics
        self.heartbeats_received += 1

    def snapshot(self) -> dict[str, HeartbeatMetrics]:
        return dict(self._last)

    def age(self, host: str) -> float:
        """Seconds since the host's last heartbeat (inf if never seen)."""
        m = self._last.get(host)
        return float("inf") if m is None else self.env.now - m.time

    def down_hosts(self, threshold: Optional[float] = None) -> list[str]:
        """Hosts whose heartbeat is stale — shoot-node candidates.

        Includes expected hosts that died before their first heartbeat:
        their age is inf, which no threshold forgives.
        """
        limit = threshold if threshold is not None else 3 * self.heartbeat_seconds
        return sorted(h for h in self._known() if self.age(h) > limit)

    def up_hosts(self, threshold: Optional[float] = None) -> list[str]:
        limit = threshold if threshold is not None else 3 * self.heartbeat_seconds
        return sorted(h for h in self._known() if self.age(h) <= limit)

    def report(self) -> str:
        """A textual cluster-status page (the SCE web view, minus VRML)."""
        lines = [f"{'host':<16} {'state':<12} {'age':>6} {'load':>5} {'pkgs':>5}"]
        for host in sorted(self._known()):
            m = self._last.get(host)
            if m is None:
                lines.append(f"{host:<16} {'no-contact':<12}   infs {'-':>5} {'-':>5}")
                continue
            lines.append(
                f"{host:<16} {m.state:<12} {self.age(host):>5.0f}s "
                f"{m.load:>5} {m.packages:>5}"
            )
        return "\n".join(lines)


class MonitorDaemon:
    """The per-node gmond: heartbeats while the node is up."""

    def __init__(self, monitor: ClusterMonitor, machine: Machine):
        self.monitor = monitor
        self.machine = machine
        self.beats_sent = 0
        self._proc = machine.env.process(
            self._loop(), name=f"gmond:{machine.hostid}"
        )

    def _loop(self):
        env = self.machine.env
        while True:
            if self.machine.state is MachineState.UP:
                self.monitor.publish(
                    HeartbeatMetrics(
                        host=self.machine.hostid,
                        time=env.now,
                        state=self.machine.state.value,
                        load=len(self.machine.user_processes),
                        packages=len(self.machine.rpmdb),
                        kernel=self.machine.kernel_version,
                        install_count=self.machine.install_count,
                    )
                )
                self.beats_sent += 1
            # Daemons beat in lockstep, so share one heap entry per tick
            # instead of one per machine.
            yield env.slotted_timeout(self.monitor.heartbeat_seconds)


def __getattr__(name: str):
    # Deprecation shim: this dataclass was exported as ``Metrics`` until
    # it collided with :class:`repro.telemetry.metrics.Metrics` (the
    # counter/gauge store) — two same-named classes one import away from
    # each other.  The old name resolves, loudly, for one more cycle.
    if name == "Metrics":
        import warnings

        warnings.warn(
            "repro.services.monitor.Metrics was renamed to "
            "HeartbeatMetrics (the old name collided with "
            "repro.telemetry.metrics.Metrics, the counter store); "
            "update imports — the alias will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        return HeartbeatMetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def enable_monitoring(env: Environment, machines: list[Machine],
                      heartbeat_seconds: float = 10.0,
                      source=None) -> ClusterMonitor:
    """Start a monitor; agent-fed when ``source`` is given, else daemons.

    With ``source`` (a :class:`~repro.monitoring.MetricAggregator`) the
    monitor consumes the gmond agents' heartbeats — the single source
    of truth — and no legacy :class:`MonitorDaemon` loops are spawned.
    Without it, the pre-monitoring behaviour is unchanged.
    """
    monitor = ClusterMonitor(env, heartbeat_seconds=heartbeat_seconds)
    monitor.expect_hosts(m.hostid for m in machines)
    if source is not None:
        monitor.attach_source(source)
    else:
        for machine in machines:
            MonitorDaemon(monitor, machine)
    return monitor
