"""Network Information Service: account synchronisation.

"User account configuration (passwords and home directory locations)
are synchronized from the frontend node to compute nodes with the
Network Information Service" (§5).  We model the NIS domain as a master
map on the frontend that bound clients read through — a *dynamic,
scalable* service in the paper's taxonomy, so reads reflect the master
immediately (clients hold no stale copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .base import Service, ServiceError

__all__ = ["NisDomain", "NisClient", "UserAccount"]


@dataclass(frozen=True)
class UserAccount:
    """A passwd-map entry."""

    username: str
    uid: int
    home: str
    shell: str = "/bin/bash"

    def passwd_line(self) -> str:
        return f"{self.username}:x:{self.uid}:{self.uid}::{self.home}:{self.shell}"


class NisDomain(Service):
    """ypserv on the frontend: the master passwd map."""

    def __init__(self, domain: str):
        super().__init__(f"ypserv/{domain}")
        self.domain = domain
        self._users: dict[str, UserAccount] = {}
        self.map_version = 0

    def add_user(self, account: UserAccount) -> None:
        if account.username in self._users:
            raise ValueError(f"user {account.username!r} already exists")
        if any(u.uid == account.uid for u in self._users.values()):
            raise ValueError(f"uid {account.uid} already in use")
        self._users[account.username] = account
        self.map_version += 1

    def remove_user(self, username: str) -> None:
        if username not in self._users:
            raise KeyError(username)
        del self._users[username]
        self.map_version += 1

    def lookup(self, username: str) -> Optional[UserAccount]:
        self.require_running()
        return self._users.get(username)

    def passwd_map(self) -> str:
        self.require_running()
        return "\n".join(
            self._users[u].passwd_line() for u in sorted(self._users)
        )

    def __len__(self) -> int:
        return len(self._users)


class NisClient(Service):
    """ypbind on a compute node."""

    def __init__(self, host: str, domain: NisDomain):
        super().__init__(f"ypbind/{host}")
        self.host = host
        self.domain = domain

    def getpwnam(self, username: str) -> UserAccount:
        """Resolve a user through the bound domain (raises if unbound)."""
        self.require_running()
        try:
            account = self.domain.lookup(username)
        except ServiceError as err:
            raise ServiceError(f"NIS lookup failed on {self.host}: {err}") from err
        if account is None:
            raise KeyError(f"user {username!r} unknown in domain {self.domain.domain}")
        return account
