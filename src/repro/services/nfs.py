"""The Network File System: home directories, and the one unscalable service.

§5: "We have employed one unscalable service, the Network File System.
The frontend node exports all user home directories to compute nodes via
NFS."  §4 adds that when a node's Ethernet won't come up the culprit is
usually "a central (common-mode) service (often NFS)".  Failure
injection rides the shared :class:`~repro.services.base.Faultable`
surface (``fail()``/``repair()``) and drives the common-mode-failure
experiment: every mounted client stalls at once, and the fix is
repair-then-remote-power-cycle, exactly the paper's recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .base import Service, ServiceError

__all__ = ["NfsServer", "NfsMount", "StaleFileHandle"]


class StaleFileHandle(ServiceError):
    """Raised on access through a mount whose server has failed."""


@dataclass
class _Export:
    path: str
    files: dict[str, bytes] = field(default_factory=dict)


class NfsServer(Service):
    """nfsd on the frontend, exporting home directories."""

    def __init__(self, host: str):
        super().__init__(f"nfsd/{host}")
        self.host = host
        self._exports: dict[str, _Export] = {}
        self._mounts: list["NfsMount"] = []

    # -- exports ------------------------------------------------------------
    def export(self, path: str) -> None:
        if path in self._exports:
            raise ValueError(f"{path} already exported")
        self._exports[path] = _Export(path)

    def exports(self) -> list[str]:
        return sorted(self._exports)

    def etab(self) -> str:
        """The /etc/exports view."""
        return "\n".join(f"{p} *(rw,no_root_squash)" for p in self.exports())

    # -- server-side IO -------------------------------------------------------
    def _read(self, export: str, name: str) -> bytes:
        if self.state is not self.state.RUNNING:
            raise StaleFileHandle(f"NFS server {self.host} is {self.state.value}")
        exp = self._lookup(export)
        try:
            return exp.files[name]
        except KeyError:
            raise FileNotFoundError(f"{export}/{name}") from None

    def _write(self, export: str, name: str, data: bytes) -> None:
        if self.state is not self.state.RUNNING:
            raise StaleFileHandle(f"NFS server {self.host} is {self.state.value}")
        self._lookup(export).files[name] = data

    def _lookup(self, export: str) -> _Export:
        try:
            return self._exports[export]
        except KeyError:
            raise ServiceError(f"{export} is not exported by {self.host}") from None

    # -- clients -------------------------------------------------------------
    def mount(self, client_host: str, export: str, mountpoint: str) -> "NfsMount":
        """A compute node mounts an export."""
        self.require_running()
        self._lookup(export)
        m = NfsMount(self, client_host, export, mountpoint)
        self._mounts.append(m)
        return m

    def mounted_clients(self) -> list[str]:
        return sorted({m.client_host for m in self._mounts if m.active})

    def affected_by_failure(self) -> list[str]:
        """Clients that would hang right now — the common-mode blast radius."""
        if self.running:
            return []
        return self.mounted_clients()


class NfsMount:
    """A client-side mount: the ubiquitous open/read/write/close interface."""

    def __init__(self, server: NfsServer, client_host: str, export: str, mountpoint: str):
        self.server = server
        self.client_host = client_host
        self.export = export
        self.mountpoint = mountpoint
        self.active = True

    def _check(self) -> None:
        if not self.active:
            raise ServiceError(f"{self.mountpoint} is not mounted on {self.client_host}")

    def write(self, name: str, data: bytes) -> None:
        self._check()
        self.server._write(self.export, name, data)

    def read(self, name: str) -> bytes:
        self._check()
        return self.server._read(self.export, name)

    def listdir(self) -> list[str]:
        self._check()
        if not self.server.running:
            raise StaleFileHandle(f"NFS server {self.server.host} unavailable")
        return sorted(self.server._lookup(self.export).files)

    def umount(self) -> None:
        self.active = False
