"""Common machinery for simulated cluster services.

Rocks regenerates service configuration files from database reports and
*restarts the respective services* (§6.4, insert-ethers).  Every service
therefore exposes the same small lifecycle — configure / start / stop /
restart — plus a restart counter so tests and benchmarks can observe the
regenerate-and-restart pattern.

:class:`Faultable` is the failure-injection surface: :mod:`repro.faults`
targets any service through the same ``fail()``/``repair()`` pair, so a
dhcpd blackout and an httpd crash are expressed identically (§4 calls
these common-mode failures, "often NFS").
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["Faultable", "Service", "ServiceState", "ServiceError"]


class ServiceError(Exception):
    """A service was used in a state it cannot serve from."""


class ServiceState(enum.Enum):
    STOPPED = "stopped"
    RUNNING = "running"
    FAILED = "failed"  # common-mode failure (§4: "often NFS")


class Faultable:
    """Uniform failure-injection hooks.

    A faulted service stays dead — requests raise, clients stall — until
    ``repair()`` brings it back.  Subclasses that mirror their state onto
    other resources (a daemon flag, open connections) override
    :meth:`_sync_runtime`, which runs after *every* lifecycle transition.

    Lifecycle transitions emit ``service`` telemetry events when the
    owning environment (an ``env`` attribute, where one exists) carries
    an enabled tracer.
    """

    state: ServiceState

    def _trace(self, action: str) -> None:
        env = getattr(self, "env", None)
        if env is not None and env.tracer.enabled:
            name = getattr(self, "name", type(self).__name__)
            env.tracer.event("service", name, action=action)

    def fail(self) -> None:
        """Inject a failure (the service stays dead until repaired)."""
        self.state = ServiceState.FAILED
        self._sync_runtime()
        self._trace("fail")

    def repair(self) -> None:
        if self.state is ServiceState.FAILED:
            self.state = ServiceState.RUNNING
            self._sync_runtime()
            self._trace("repair")

    @property
    def faulted(self) -> bool:
        return self.state is ServiceState.FAILED

    def _sync_runtime(self) -> None:
        """Reflect the current state onto backing resources (hook)."""


class Service(Faultable):
    """Base class: named service with a config text and lifecycle."""

    def __init__(self, name: str):
        self.name = name
        self.state = ServiceState.STOPPED
        self.config_text: str = ""
        self.restarts = 0
        self.config_generation = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.state is ServiceState.RUNNING:
            return
        self.state = ServiceState.RUNNING
        self._sync_runtime()
        self._trace("start")

    def stop(self) -> None:
        self.state = ServiceState.STOPPED
        self._sync_runtime()
        self._trace("stop")

    def restart(self) -> None:
        self.stop()
        self.start()
        self.restarts += 1
        self._trace("restart")

    @property
    def running(self) -> bool:
        return self.state is ServiceState.RUNNING

    def require_running(self) -> None:
        if not self.running:
            raise ServiceError(f"{self.name} is {self.state.value}")

    # -- configuration ---------------------------------------------------------
    def configure(self, config_text: str) -> None:
        """Install a new config file; takes effect on the next restart."""
        self.config_text = config_text
        self.config_generation += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"
