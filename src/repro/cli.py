"""Command-line interface: drive the simulated Rocks cluster like the
real toolchain.

Because the cluster is simulated, the CLI is scenario-oriented: each
subcommand stands up a cluster, exercises one Rocks workflow with the
real tool implementations, and prints what the corresponding physical
commands would have shown.

    python -m repro build --nodes 8          # frontend + insert-ethers
    python -m repro reinstall --nodes 16     # the Table I experiment
    python -m repro table1                   # the full Table I sweep
    python -m repro dist                     # rocks-dist build report
    python -m repro kickstart --appliance compute --arch ia64
    python -m repro reports                  # hosts/dhcpd/PBS from the DB
    python -m repro chaos --nodes 32         # reinstall under fault injection
    python -m repro trace --nodes 8          # traced reinstall + summary
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import build_cluster
from .core.kickstart import KickstartGenerator, default_graph, default_node_files
from .rpm import Repository, community_packages, npaci_packages, stock_redhat

__all__ = ["main"]


def _cmd_build(args: argparse.Namespace) -> int:
    sim = build_cluster(n_compute=args.nodes)
    names = sim.integrate_all()
    f = sim.frontend
    print(f"frontend {f.config.name}: {len(f.machine.rpmdb)} packages, "
          f"{len(f.distributions)} distribution(s)")
    print(f"integrated {len(names)} compute nodes via insert-ethers:")
    for row in sim.db.compute_nodes():
        print(f"  {row.name:<14} {row.mac}  {row.ip}  rack={row.rack} rank={row.rank}")
    return 0


def _cmd_reinstall(args: argparse.Namespace) -> int:
    sim = build_cluster(n_compute=args.nodes)
    sim.integrate_all()
    reports = sim.reinstall_all()
    span = max(r.finished_at for r in reports) - min(r.started_at for r in reports)
    for r in sorted(reports, key=lambda r: r.host):
        print(f"  {r.host:<14} {r.method:<9} {r.minutes:6.2f} min")
    print(f"total: {len(reports)} concurrent reinstalls in {span / 60:.2f} minutes")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    paper = {1: 10.3, 2: 9.8, 4: 10.1, 8: 10.4, 16: 11.1, 32: 13.7}
    print(f"{'nodes':>5}  {'paper':>6}  {'measured':>8}")
    for n in sorted(paper):
        if n > args.max_nodes:
            continue
        sim = build_cluster(n_compute=n)
        sim.integrate_all()
        reports = sim.reinstall_all()
        span = (
            max(r.finished_at for r in reports)
            - min(r.started_at for r in reports)
        ) / 60
        print(f"{n:>5}  {paper[n]:>6.1f}  {span:>8.2f}")
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    from .core.distribution import RocksDist
    from .rpm import UpdateStream

    stock = stock_redhat(arch=args.arch)
    stream = UpdateStream(stock, updates_per_year=124)
    rd = RocksDist.standard(
        stock,
        updates=stream.updates_repository(args.day),
        contrib=community_packages(args.arch),
        local=npaci_packages(),
        arch=args.arch,
    )
    dist = rd.dist()
    report = rd.reports[-1]
    print(f"distribution {dist.name} ({dist.arch})")
    print(f"  sources:        {report.n_sources}")
    print(f"  packages:       {report.n_packages}")
    print(f"  older dropped:  {report.dropped_older}")
    print(f"  build time:     {report.build_seconds:.1f} s (simulated)")
    print(f"  tree size:      {report.tree_bytes / 1e6:.1f} MB")
    print(f"  payload behind: {dist.payload_bytes() / 1e6:.0f} MB")
    return 0


def _cmd_kickstart(args: argparse.Namespace) -> int:
    repo = Repository("rocks-dist")
    repo.add_all(stock_redhat(arch=args.arch))
    repo.add_all(community_packages(args.arch))
    repo.add_all(npaci_packages())
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)
    ks = gen.kickstart(args.appliance, args.arch, "rocks-dist")
    sys.stdout.write(ks.render())
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    graph = default_graph()
    if args.dot:
        print(graph.to_dot())
    else:
        for root in graph.roots():
            print(f"{root}: {' '.join(graph.traverse(root, args.arch))}")
    return 0


def _parse_codes(value: Optional[str]) -> Optional[list[str]]:
    if value is None:
        return None
    return [c.strip() for c in value.split(",") if c.strip()]


def _possible_codes(passes, select, ignore) -> set[str]:
    """Codes the given passes could emit after select/ignore filtering."""
    codes = {code for p in passes for code in p.codes}
    if select is not None:
        codes = {c for c in codes if any(c.startswith(p) for p in select)}
    if ignore is not None:
        codes = {c for c in codes if not any(c.startswith(p) for p in ignore)}
    return codes


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        CONFIG_PASSES,
        DEEP_PASSES,
        SELF_PASSES,
        Baseline,
        ConfigContext,
        analyze_config,
        analyze_deep,
        analyze_self,
        default_deep_context,
        default_self_context,
        render_json,
        render_text,
    )

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)

    if args.self or args.deep:
        ctx = default_self_context()
        diagnostics = analyze_self(ctx, select=select, ignore=ignore)
        ran_passes = list(SELF_PASSES)
        if args.deep:
            diagnostics += analyze_deep(
                default_deep_context(), select=select, ignore=ignore
            )
            diagnostics.sort(key=lambda d: d.sort_key)
            ran_passes += DEEP_PASSES
        default_baseline = ctx.repo_root / "lint-baseline.txt"
    else:
        arches = tuple(a.strip() for a in args.arch.split(",") if a.strip())
        sources = [("stock-redhat", stock_redhat(arch=arches[0]))]
        for arch in arches[1:]:
            sources.append((f"stock-redhat-{arch}", stock_redhat(arch=arch)))
        for arch in arches:
            sources.append((f"community-{arch}", community_packages(arch)))
        sources.append(("npaci", npaci_packages()))
        repo = Repository("rocks-dist")
        for _, src in sources:
            repo.add_all(src)
        ctx = ConfigContext(
            graph=default_graph(),
            node_files=default_node_files(),
            dist_name="rocks-dist",
            dist_resolver=lambda d: repo,
            arches=arches,
            sources=sources,
        )
        diagnostics = analyze_config(ctx, select=select, ignore=ignore)
        ran_passes = list(CONFIG_PASSES)
        default_baseline = Path("lint-baseline.txt")

    baseline_path = args.baseline or default_baseline
    if args.no_baseline:
        baseline = Baseline()
    else:
        baseline = Baseline.from_file(baseline_path)
    diagnostics, suppressed = baseline.apply(diagnostics)

    # Baseline hygiene: an entry this run could have re-proven but did
    # not is dead weight hiding a future regression at the same spot.
    stale = baseline.stale(_possible_codes(ran_passes, select, ignore))
    if stale and args.prune_baseline:
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write(baseline.pruned(stale).render())
        for entry in stale:
            print(f"lint: pruned stale baseline entry: {entry.render()}",
                  file=sys.stderr)
        stale = []
    for entry in stale:
        print(f"lint: warning: stale baseline entry (suppresses "
              f"nothing): {entry.render()}", file=sys.stderr)

    if args.format == "json":
        sys.stdout.write(render_json(diagnostics, suppressed=len(suppressed)))
    else:
        if not diagnostics:
            print(
                "lint: src/repro is consistent with the determinism rules"
                if args.self or args.deep
                else "lint: XML infrastructure is consistent with the "
                     "distribution"
            )
        sys.stdout.write(render_text(diagnostics, suppressed=len(suppressed)))
    errors = sum(1 for d in diagnostics if d.severity.value == "error")
    failing = len(diagnostics) if args.strict else errors
    if args.strict and stale:
        return 1
    return 1 if failing else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .analysis import Baseline, default_self_context, render_text
    from .analysis.sanitizer import diagnose_divergence, run_scenario

    seeds = args.seeds
    runs = []
    for seed in seeds:
        run = run_scenario(
            args.scenario, seed,
            nodes=args.nodes,
            record_stacks=not args.no_stacks,
        )
        print(f"sanitize: scenario {run.scenario!r} seed {seed}: "
              f"{len(run.dispatch_log)} dispatches, digest {run.digest}")
        runs.append(run)

    # Trap findings are per-run but point at source sites; merge and dedup.
    merged = {}
    for run in runs:
        for diag in run.diagnostics:
            merged.setdefault(
                (diag.code, diag.location.file, diag.location.line,
                 diag.message),
                diag,
            )
    diagnostics = sorted(merged.values(), key=lambda d: d.sort_key)

    report = diagnose_divergence(runs[0], runs[1])
    if report is not None:
        diagnostics.append(report.to_diagnostic())
        diagnostics.sort(key=lambda d: d.sort_key)

    if args.no_baseline:
        baseline = Baseline()
    else:
        default_baseline = default_self_context().repo_root / "lint-baseline.txt"
        baseline = Baseline.from_file(args.baseline or default_baseline)
    diagnostics, suppressed = baseline.apply(diagnostics)

    if report is not None:
        sys.stdout.write(report.render())
    else:
        print(f"sanitize: scenario {args.scenario!r} is byte-identical "
              f"across perturbation seeds {seeds[0]} and {seeds[1]}")
    sys.stdout.write(render_text(diagnostics, suppressed=len(suppressed)))
    errors = sum(1 for d in diagnostics if d.severity.value == "error")
    return 1 if (report is not None or errors) else 0


def _cmd_reports(args: argparse.Namespace) -> int:
    from .core.database import report_dhcpd, report_hosts, report_pbs_nodes

    sim = build_cluster(n_compute=args.nodes)
    sim.integrate_all()
    which = {
        "hosts": report_hosts,
        "dhcpd": report_dhcpd,
        "pbsnodes": report_pbs_nodes,
    }
    for name, fn in which.items():
        if args.report in ("all", name):
            print(f"# ---- {name} " + "-" * 40)
            print(fn(sim.db))
    return 0


def _campaign_nodes(value: str) -> tuple[int, Optional[str]]:
    """Parse a ``--nodes`` value: a count, or a nodeset of targets.

    ``32`` keeps the historical behaviour (a 32-node cluster, campaign
    over all of it); ``node[0-4095]`` or ``compute-0-[0-15],@compute``
    sizes the cluster to cover the set and targets exactly those nodes.
    Returns ``(n_nodes, targets-or-None)``.
    """
    if value.isdigit():
        return int(value), None
    from .faults import campaign_size

    return campaign_size(value), value


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import chaos_reinstall

    plan = args.plan
    resilience = args.resilience
    if args.frontend_crash:
        # The resilience-smoke scenario: crash the frontend mid-wave and
        # require the hardened stack to recover it.
        plan = "frontend-crash"
        resilience = True
    n_nodes, targets = _campaign_nodes(args.nodes)
    result = chaos_reinstall(
        n_nodes=n_nodes, plan=plan, seed=args.seed, resilience=resilience,
        targets=targets,
    )
    print(result.render())
    ok = result.completion_rate >= args.min_completion
    if args.frontend_crash:
        frontend = result.resilience.frontend
        recovered = (
            result.resilience.verify_recovery()
            and frontend.recovered_snapshot is not None
            and bool(result.injector.snapshots)
            and frontend.recovered_snapshot == result.injector.snapshots[0]
        )
        print(
            "\nrecovered database state: "
            + ("byte-identical" if recovered else "MISMATCH")
        )
        ok = ok and recovered
    print(
        f"\ncompletion {100 * result.completion_rate:.0f}% "
        f"(threshold {100 * args.min_completion:.0f}%): "
        + ("PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


def _cmd_storm(args: argparse.Namespace) -> int:
    from .load import StormOptions, run_storm

    options = StormOptions(
        n_nodes=args.nodes,
        seed=args.seed,
        autoscale=not args.no_autoscale,
        dhcp_stagger=args.stagger,
        deadline=args.deadline,
    )
    result = run_storm(options)
    print(result.render())
    if result.autoscaler is not None and result.scale_events:
        print()
        print(result.autoscaler.render_events())
    if args.slo:
        with open(args.slo, "w", encoding="utf-8") as fh:
            fh.write(result.slo_json())
        print(f"\nwrote SLO report to {args.slo}")
    return 0 if result.stable else 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .faults import chaos_reinstall
    from .monitoring import MonitoringOptions

    options = MonitoringOptions(interval=args.interval)

    def on_stack(stack) -> None:
        if args.watch is not None:
            stack.start_watch(period=args.watch)

    n_nodes, targets = _campaign_nodes(args.nodes)
    result = chaos_reinstall(
        n_nodes=n_nodes,
        plan=args.plan,
        seed=args.seed,
        resilience=args.resilience,
        monitoring=options,
        on_monitoring=on_stack,
        targets=targets,
    )
    stack = result.monitoring
    if args.xml:
        print(stack.render_xml())
    else:
        print(stack.render_top())
    if args.alerts:
        engine = stack.engine
        print()
        if engine.alerts:
            print(f"alerts fired ({len(engine.alerts)}):")
            for alert in engine.alerts:
                print(f"  {alert.render()}")
        else:
            print("no alerts fired")
        if engine.cleared:
            print(f"alerts cleared: {len(engine.cleared)}")
    if args.export:
        nbytes = stack.write(args.export)
        print(f"\nwrote {nbytes} bytes of RRD export to {args.export}")
    print(
        f"\ncampaign: {result.n_nodes} nodes, "
        f"{100 * result.completion_rate:.0f}% installed in "
        f"{result.minutes:.2f} min under plan {result.plan.name!r}"
    )
    return 0


def _cmd_fork(args: argparse.Namespace) -> int:
    from .exec import ExecLab, ExecOptions, LabOptions, NodeSet

    targets = args.nodes
    if "@" in targets:
        if args.size is None:
            print("fork: --size is required when --nodes uses @groups",
                  file=sys.stderr)
            return 2
        size = args.size
    else:
        # size the lab from the positional node[...] target set itself
        indices = []
        for name in NodeSet(targets):
            if not (name.startswith("node") and name[4:].isdigit()):
                print(f"fork: lab targets must look like node<i>, got {name!r}",
                      file=sys.stderr)
                return 2
            indices.append(int(name[4:]))
        size = max(max(indices) + 1, args.size or 0)
    lab = ExecLab(LabOptions(
        nodes=size,
        seed=args.seed,
        dead_fraction=args.dead,
        straggler_fraction=args.stragglers,
    ))
    report = lab.run(targets, exec_options=ExecOptions(
        fanout=args.fanout,
        command_timeout=args.timeout,
        max_retries=args.retries,
        seed=args.seed,
        straggler_interval=args.straggler_interval,
        straggler_factor=args.straggler_factor,
    ))
    print(report.render())
    return 0


def _run_traced_scenario(args: argparse.Namespace):
    """Run the scenario named by ``args`` under a tracer; returns it."""
    from .telemetry import Tracer

    tracer = Tracer()
    if args.scenario == "reinstall":
        from . import build_cluster

        sim = build_cluster(n_compute=args.nodes, tracer=tracer)
        sim.integrate_all()
        sim.reinstall_all()
    elif args.scenario == "storm":
        from .load import StormOptions, run_storm

        result = run_storm(StormOptions(n_nodes=args.nodes,
                                        seed=getattr(args, "seed", 42)))
        tracer = result.tracer
    else:  # chaos
        from .faults import chaos_reinstall

        chaos_reinstall(n_nodes=args.nodes, plan=args.plan, tracer=tracer)
    return tracer


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import (
        render_summary,
        summarize,
        to_chrome_json,
        to_jsonl,
        validate_trace_text,
        write_jsonl,
    )

    if args.validate is not None:
        with open(args.validate, encoding="utf-8") as fh:
            problems = validate_trace_text(fh.read())
        if problems:
            for p in problems:
                print(f"invalid: {p}")
            return 1
        print(f"{args.validate}: valid {TRACE_SUMMARY_NOTE}")
        return 0

    tracer = _run_traced_scenario(args)
    if args.format == "chrome":
        # chrome://tracing / Perfetto trace_event JSON: one track per
        # host/service, flow arrows for cross-node causality.
        text = to_chrome_json(tracer)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote Chrome trace to {args.out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)")
        else:
            print(text, end="")
        return 0
    if args.out:
        n = write_jsonl(tracer, args.out)
        print(f"wrote {n} records to {args.out}")
    problems = validate_trace_text(to_jsonl(tracer))
    if problems:
        for p in problems:
            print(f"invalid: {p}")
        return 1
    if args.summary or not args.out:
        print(render_summary(summarize(tracer)))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Why was this run slow?  Critical-path attribution for a scenario."""
    from .telemetry import dag_from_tracer, pick_root, render_report

    if args.profile:
        from .netsim import profiled

        with profiled() as session:
            tracer = _run_traced_scenario(args)
    else:
        tracer = _run_traced_scenario(args)
    dag = dag_from_tracer(tracer)
    root = pick_root(dag)
    if root is None:
        print("no spans recorded — nothing to explain")
        return 1
    report = render_report(dag, root, top=args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(report)
    if args.profile:
        print(session.render())
    return 0


TRACE_SUMMARY_NOTE = "repro-trace JSONL"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NPACI Rocks reproduction: simulated cluster scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="frontend + insert-ethers integration")
    p.add_argument("--nodes", type=int, default=4)
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser("reinstall", help="concurrent reinstall (Table I point)")
    p.add_argument("--nodes", type=int, default=8)
    p.set_defaults(fn=_cmd_reinstall)

    p = sub.add_parser("table1", help="the full Table I sweep")
    p.add_argument("--max-nodes", type=int, default=32)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("dist", help="rocks-dist build report")
    p.add_argument("--arch", default="i386", choices=["i386", "athlon", "ia64"])
    p.add_argument("--day", type=int, default=360,
                   help="include vendor updates released by this day")
    p.set_defaults(fn=_cmd_dist)

    p = sub.add_parser("kickstart", help="render a generated kickstart file")
    p.add_argument("--appliance", default="compute",
                   choices=["compute", "frontend", "nfs", "web"])
    p.add_argument("--arch", default="i386", choices=["i386", "athlon", "ia64"])
    p.set_defaults(fn=_cmd_kickstart)

    p = sub.add_parser("graph", help="show the appliance graph")
    p.add_argument("--arch", default="i386")
    p.add_argument("--dot", action="store_true", help="GraphViz output (Fig. 4)")
    p.set_defaults(fn=_cmd_graph)

    p = sub.add_parser(
        "lint",
        help="typed static analysis: XML config graph, or --self for the "
             "determinism linter over repro's own source",
    )
    p.add_argument("--arch", default="i386",
                   help="supported architecture(s), comma-separated "
                        "(i386, athlon, ia64)")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="diagnostic output format")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not just errors")
    p.add_argument("--select", default=None, metavar="CODES",
                   help="only run/report these code prefixes (e.g. RK1,RK203)")
    p.add_argument("--ignore", default=None, metavar="CODES",
                   help="drop these code prefixes")
    p.add_argument("--self", action="store_true",
                   help="run the AST determinism linter over src/repro "
                        "instead of the config analyzers")
    p.add_argument("--deep", action="store_true",
                   help="also run the RK3xx dataflow determinism passes "
                        "(symbol table + call graph over src/repro; "
                        "implies --self)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="suppression baseline file "
                        "(default: lint-baseline.txt)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any suppression baseline")
    p.add_argument("--prune-baseline", action="store_true",
                   help="rewrite the baseline file without stale entries "
                        "(entries that no longer suppress anything)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="schedule-perturbation race detector: run a scenario twice "
             "under different same-tick tie-break seeds and compare "
             "digests (divergence proves a scheduling race)",
    )
    p.add_argument("scenario", nargs="?", default="table1",
                   help="scenario to sanitize: table1, storm, or "
                        "race-fixture (the planted positive control)")
    p.add_argument("--nodes", type=int, default=None,
                   help="override the scenario's default cluster size")
    p.add_argument("--seeds", type=int, nargs=2, default=[1, 2],
                   metavar=("A", "B"),
                   help="the two perturbation seeds to compare")
    p.add_argument("--no-stacks", action="store_true",
                   help="skip per-event scheduling-stack capture (faster; "
                        "race reports lose their stacks)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="suppression baseline file "
                        "(default: lint-baseline.txt)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any suppression baseline")
    p.set_defaults(fn=_cmd_sanitize)

    p = sub.add_parser(
        "chaos", help="reinstall campaign under a fault-injection plan"
    )
    p.add_argument("--nodes", default="32",
                   help="node count, or a nodeset of campaign targets "
                        "(node[0-4095], compute-0-[0-15], @compute)")
    from .faults import PLANS

    p.add_argument("--plan", default="default", choices=sorted(PLANS))
    p.add_argument("--seed", type=int, default=None,
                   help="re-seed the plan (default: the plan's own seed)")
    p.add_argument("--min-completion", type=float, default=0.9,
                   help="exit nonzero below this installed fraction")
    p.add_argument("--resilience", action="store_true",
                   help="harden the frontend (supervisor+journal+breaker)")
    p.add_argument("--frontend-crash", action="store_true",
                   help="run the frontend-crash recovery scenario: implies "
                        "--plan frontend-crash --resilience and verifies the "
                        "recovered database is byte-identical")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "storm",
        help="whole-site power-restore install storm: admission control, "
             "circuit breakers, and gauge-driven autoscaling under the "
             "thundering herd; exits nonzero if the cluster never stabilizes",
    )
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--no-autoscale", action="store_true",
                   help="run the single-frontend baseline (expect it to "
                        "struggle at scale)")
    p.add_argument("--stagger", type=float, default=45.0,
                   help="max seeded per-node DHCP stagger after restore (s)")
    p.add_argument("--deadline", type=float, default=4.0 * 3600.0,
                   help="simulated seconds after restore before giving up")
    p.add_argument("--slo", metavar="PATH", default=None,
                   help="write the canonical SLO report JSON to this path")
    p.set_defaults(fn=_cmd_storm)

    p = sub.add_parser(
        "monitor",
        help="reinstall campaign observed by the gmond/gmetad monitoring "
             "stack: cluster-top, alerts, RRD export, Ganglia XML",
    )
    p.add_argument("--nodes", default="32",
                   help="node count, or a nodeset of campaign targets "
                        "(node[0-4095], compute-0-[0-15], @compute)")
    from .faults import PLANS as _mon_plans

    p.add_argument("--plan", default="none", choices=sorted(_mon_plans),
                   help="fault plan to run the campaign under")
    p.add_argument("--seed", type=int, default=None,
                   help="re-seed the plan (default: the plan's own seed)")
    p.add_argument("--interval", type=float, default=15.0,
                   help="gmond sampling interval in simulated seconds")
    p.add_argument("--watch", type=float, nargs="?", const=120.0, default=None,
                   metavar="PERIOD",
                   help="print cluster-top every PERIOD simulated seconds "
                        "during the campaign (default 120)")
    p.add_argument("--export", metavar="PATH", default=None,
                   help="write the round-robin store + alerts as canonical "
                        "JSON to this path")
    p.add_argument("--alerts", action="store_true",
                   help="print every alert the engine fired")
    p.add_argument("--xml", action="store_true",
                   help="print the Ganglia-style XML dump instead of "
                        "cluster-top")
    p.add_argument("--resilience", action="store_true",
                   help="harden the frontend (supervisor+journal+breaker)")
    p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser(
        "fork",
        help="fault-tolerant cluster-fork over a nodeset: sliding fanout "
             "window, timeouts/retries, typed dead-node results, gathered "
             "MsgTree report (byte-identical for the same seed)",
    )
    p.add_argument("--nodes", default="node[0-511]",
                   help="nodeset of targets, e.g. node[0-4095] or "
                        "@cabinet0 (default node[0-511])")
    p.add_argument("--size", type=int, default=None,
                   help="lab cluster size; required when --nodes uses "
                        "@groups, otherwise inferred from the nodeset")
    p.add_argument("--fanout", type=int, default=64,
                   help="sliding-window width (concurrent nodes)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-attempt command deadline in simulated seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts after the first")
    p.add_argument("--dead", type=float, default=0.0,
                   help="fraction of nodes dead (half dark, half killed "
                        "by the PDU mid-command)")
    p.add_argument("--stragglers", type=float, default=0.0,
                   help="fraction of nodes running 10x slow")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--straggler-interval", type=float, default=15.0,
                   help="straggler monitor period (simulated seconds)")
    p.add_argument("--straggler-factor", type=float, default=3.0,
                   help="flag nodes slower than factor x the rolling "
                        "completion percentile")
    p.set_defaults(fn=_cmd_fork)

    p = sub.add_parser(
        "trace", help="run a scenario with telemetry; dump or summarize the trace"
    )
    p.add_argument("--scenario", default="reinstall",
                   choices=["reinstall", "chaos", "storm"])
    p.add_argument("--nodes", type=int, default=8)
    from .faults import PLANS as _plans

    p.add_argument("--plan", default="default", choices=sorted(_plans),
                   help="fault plan for --scenario chaos")
    p.add_argument("--seed", type=int, default=42,
                   help="scenario seed (storm)")
    p.add_argument("--format", default="jsonl", choices=["jsonl", "chrome"],
                   help="output format: repro-trace JSONL (default) or "
                        "Chrome trace_event JSON for chrome://tracing / "
                        "Perfetto")
    p.add_argument("--out", default=None,
                   help="write the trace to this path")
    p.add_argument("--summary", action="store_true",
                   help="print the aggregated summary (default when no --out)")
    p.add_argument("--validate", metavar="PATH", default=None,
                   help="validate an existing JSONL trace file and exit")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "explain",
        help="why was this run slow?  trace a scenario, reconstruct the "
             "span DAG, and attribute the critical path to named "
             "resources (byte-identical for a fixed seed)",
    )
    p.add_argument("scenario", nargs="?", default="reinstall",
                   choices=["reinstall", "chaos", "storm"],
                   help="scenario to trace and explain (default reinstall)")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--plan", default="default", choices=sorted(_plans),
                   help="fault plan for the chaos scenario")
    p.add_argument("--seed", type=int, default=42,
                   help="scenario seed (storm)")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="show only the N biggest resources")
    p.add_argument("--out", default=None,
                   help="write the report to this path instead of stdout")
    p.add_argument("--profile", action="store_true",
                   help="also run the engine self-profiler and print "
                        "where the wall time went (diagnostic; not "
                        "byte-stable)")
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("reports", help="database-derived config files (§6.4)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--report", default="all",
                   choices=["all", "hosts", "dhcpd", "pbsnodes"])
    p.set_defaults(fn=_cmd_reports)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
