"""Simulated cluster hardware: machines, racks, PDUs, and the catalog."""

from .cluster import ClusterHardware
from .hardware import (
    CATALOG,
    Cpu,
    CpuArch,
    Disk,
    DiskController,
    MacAllocator,
    MachineSpec,
    Nic,
    NicKind,
)
from .node import BootTimes, Machine, MachineState, Partition, PowerState
from .pdu import OutletError, PowerDistributionUnit
from .rack import Cabinet, CabinetFull

__all__ = [
    "ClusterHardware",
    "CATALOG",
    "Cpu",
    "CpuArch",
    "Disk",
    "DiskController",
    "MacAllocator",
    "MachineSpec",
    "Nic",
    "NicKind",
    "BootTimes",
    "Machine",
    "MachineState",
    "Partition",
    "PowerState",
    "OutletError",
    "PowerDistributionUnit",
    "Cabinet",
    "CabinetFull",
]
