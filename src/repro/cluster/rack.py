"""Cabinets: the physical layout behind Rocks's (rack, rank) naming.

insert-ethers names nodes ``compute-<rack>-<rank>`` by booting them in
physical order (§6.4, footnote); the cabinet model records that mapping
and provides each cabinet's Ethernet switch and PDU, matching Table II's
``network-0-0`` / PDU membership rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..netsim import Environment
from .node import Machine
from .pdu import PowerDistributionUnit

__all__ = ["Cabinet", "CabinetFull"]


class CabinetFull(Exception):
    """No free slots (or PDU outlets) remain in the cabinet."""


class Cabinet:
    """One rack: machines in rank order plus shared switch and PDU."""

    def __init__(self, env: Environment, rack: int, capacity: int = 32):
        if rack < 0:
            raise ValueError("rack number cannot be negative")
        if capacity <= 0:
            raise ValueError("cabinet capacity must be positive")
        self.env = env
        self.rack = rack
        self.capacity = capacity
        self.switch_name = f"network-{rack}-0"
        self.pdu = PowerDistributionUnit(env, f"pdu-{rack}-0", n_outlets=capacity)
        self._slots: list[Machine] = []

    def insert(self, machine: Machine) -> int:
        """Rack a machine in the next slot; returns its rank."""
        if len(self._slots) >= self.capacity:
            raise CabinetFull(f"rack {self.rack} is full ({self.capacity} slots)")
        rank = len(self._slots)
        self._slots.append(machine)
        self.pdu.wire(rank, machine)
        return rank

    def rank_of(self, machine: Machine) -> Optional[int]:
        try:
            return self._slots.index(machine)
        except ValueError:
            return None

    def machine_at(self, rank: int) -> Machine:
        return self._slots[rank]

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._slots)
