"""Cluster hardware assembly: machines, cabinets, and the Ethernet fabric.

This is Figure 1 of the paper as code: standard high-volume servers on a
single Ethernet (no dedicated management network — "yet another network
increases the physical deployment and the management burden"), power
units, and an optional Myrinet interconnect which we track as a hardware
attribute (it matters to the installer, which must rebuild its driver)
but not as a second simulated fabric, since all management traffic rides
Ethernet.

Machines are addressed on the simulated network by **MAC address** —
their only identity before insert-ethers names them, exactly as in the
paper where a node is first known by the MAC in its DHCP request.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..netsim import Environment, MBIT, Network
from .hardware import CATALOG, MacAllocator, MachineSpec
from .node import BootTimes, Machine
from .rack import Cabinet

__all__ = ["ClusterHardware"]


class ClusterHardware:
    """All physical assets of one cluster, wired to a simulated Ethernet."""

    def __init__(self, env: Environment, seed: int = 0, boot_times: BootTimes = BootTimes()):
        self.env = env
        self.seed = seed
        self.boot_times = boot_times
        self.network = Network(env)
        self.macs = MacAllocator()
        self.cabinets: list[Cabinet] = []
        self._by_mac: dict[str, Machine] = {}
        self._by_name: dict[str, Machine] = {}

    # -- construction ---------------------------------------------------------
    def add_cabinet(self, capacity: int = 32) -> Cabinet:
        cab = Cabinet(self.env, rack=len(self.cabinets), capacity=capacity)
        self.cabinets.append(cab)
        return cab

    def add_machine(
        self,
        spec: Union[MachineSpec, str],
        cabinet: Optional[Cabinet] = None,
        name: Optional[str] = None,
    ) -> Machine:
        """Rack and cable a new machine; it starts powered off.

        ``spec`` may be a :class:`MachineSpec` or a catalog model name.
        """
        if isinstance(spec, str):
            try:
                spec = CATALOG[spec]
            except KeyError:
                raise KeyError(
                    f"unknown machine model {spec!r}; catalog has "
                    f"{sorted(CATALOG)}"
                ) from None
        mac = self.macs.allocate()
        machine = Machine(
            self.env,
            spec,
            mac,
            name=name,
            boot_times=self.boot_times,
            rng_seed=self.seed,
        )
        self._by_mac[mac] = machine
        if name:
            self._register_name(machine, name)
        self.network.attach(mac, speed=spec.ethernet_mbit * MBIT)
        # Mirror the OS state onto the Ethernet link automatically.
        machine.on_state_change.append(lambda m, _s: self.sync_link_state(m))
        self.sync_link_state(machine)
        if cabinet is None:
            if not self.cabinets or len(self.cabinets[-1]) >= self.cabinets[-1].capacity:
                self.add_cabinet()
            cabinet = self.cabinets[-1]
        cabinet.insert(machine)
        return machine

    def rename(self, machine: Machine, name: str) -> None:
        """Give an anonymous machine its cluster hostname (insert-ethers)."""
        if machine.name == name:
            return
        if machine.name is not None:
            self._by_name.pop(machine.name, None)
        machine.name = name
        self._register_name(machine, name)

    def _register_name(self, machine: Machine, name: str) -> None:
        if name in self._by_name and self._by_name[name] is not machine:
            raise ValueError(f"hostname {name!r} already taken")
        self._by_name[name] = machine

    # -- lookup -----------------------------------------------------------------
    def by_mac(self, mac: str) -> Machine:
        try:
            return self._by_mac[mac]
        except KeyError:
            raise KeyError(f"no machine with MAC {mac!r}") from None

    def by_name(self, name: str) -> Machine:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no machine named {name!r}") from None

    def find(self, ident: str) -> Machine:
        """Resolve a hostname or MAC to a machine."""
        if ident in self._by_name:
            return self._by_name[ident]
        return self.by_mac(ident)

    def machines(self) -> Iterator[Machine]:
        return iter(self._by_mac.values())

    def address(self, machine: Machine) -> str:
        """The machine's address on the simulated Ethernet (its MAC)."""
        return machine.mac

    def location(self, machine: Machine) -> Optional[tuple[int, int]]:
        """(rack, rank) of a racked machine, or None."""
        for cab in self.cabinets:
            rank = cab.rank_of(machine)
            if rank is not None:
                return (cab.rack, rank)
        return None

    def cabinet(self, rack: int) -> Cabinet:
        return self.cabinets[rack]

    def pdu_for(self, machine: Machine):
        """The PDU/outlet pair feeding a machine, or None if unwired."""
        for cab in self.cabinets:
            outlet = cab.pdu.outlet_of(machine)
            if outlet is not None:
                return cab.pdu, outlet
        return None

    # -- link state ---------------------------------------------------------------
    def ethernet_reachable(self, a: Machine, b: Machine) -> bool:
        """Can ``a`` talk to ``b``?  Requires b's OS up with its NIC configured."""
        return (
            self.network.reachable(a.mac, b.mac)
            and a.power.value == "on"
            and b.power.value == "on"
        )

    def sync_link_state(self, machine: Machine) -> None:
        """Reflect the machine's OS state onto its network link.

        The Ethernet comes up early in boot (§4) — during installation
        (eKV needs it) and when up — and is dark during POST or power-off.
        """
        from .node import MachineState

        up = machine.state in (
            MachineState.INSTALLING,
            MachineState.BOOTING,
            MachineState.UP,
        )
        if self.network.has_host(machine.mac):
            self.network.set_host_up(machine.mac, up)
