"""The simulated machine: power states, boot path, disks, console.

A Rocks compute node's OS is *soft state* (§1): the machine model
therefore separates what survives a reinstall (non-root partitions,
the hardware itself, its MAC) from what does not (the root filesystem,
i.e. the :class:`~repro.rpm.rpmdb.RpmDatabase` and configuration files).

The boot path implements the paper's semantics:

* a **hard power cycle** forces the node to reinstall itself
  (footnote, §4);
* a node with no OS installs on first boot;
* ``request_reinstall()`` is what *shoot-node* sends over Ethernet;
* otherwise the node boots its installed OS and comes ``UP``.

The actual installation procedure is injected (``install_driver``) so
this layer stays independent of the installer above it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..netsim import Environment, Interrupt, Process
from ..rpm import RpmDatabase
from .hardware import MachineSpec, Nic, NicKind

__all__ = ["Machine", "PowerState", "MachineState", "Partition", "BootTimes"]


class PowerState(enum.Enum):
    OFF = "off"
    ON = "on"


class MachineState(enum.Enum):
    """What the machine is doing (visible over eKV or the crash cart)."""

    OFF = "off"
    POST = "post"  # BIOS power-on self test: invisible over Ethernet (§4)
    INSTALLING = "installing"
    BOOTING = "booting"
    UP = "up"
    HUNG = "hung"


@dataclass
class Partition:
    """A named disk partition; ``data`` survives reinstalls unless root."""

    name: str
    size_mb: int
    is_root: bool = False
    data: dict[str, Any] = field(default_factory=dict)

    def wipe(self) -> None:
        self.data.clear()


@dataclass(frozen=True)
class BootTimes:
    """Calibrated durations (seconds) for the non-install boot phases."""

    post: float = 75.0  # BIOS + memory check
    post_jitter: float = 20.0  # staggering across nodes
    boot_os: float = 55.0  # kernel + init scripts to multi-user

    def sample_post(self, rng: random.Random) -> float:
        return max(5.0, self.post + rng.uniform(-self.post_jitter, self.post_jitter))


InstallDriver = Callable[["Machine"], Generator]


class Machine:
    """One piece of cluster hardware attached to the simulation."""

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        mac: str,
        name: Optional[str] = None,
        boot_times: BootTimes = BootTimes(),
        rng_seed: int = 0,
    ):
        self.env = env
        self.spec = spec
        self.mac = mac
        self.name = name  # assigned by insert-ethers for anonymous nodes
        self.boot_times = boot_times
        self.rng = random.Random((rng_seed, mac).__repr__())

        self.power = PowerState.OFF
        self.state = MachineState.OFF
        self.reinstall_on_boot = False
        self.rpmdb = RpmDatabase()
        self.partitions: dict[str, Partition] = {}
        self.kernel_version: Optional[str] = None
        self.ip: Optional[str] = None  # leased by DHCP during install
        self.loaded_modules: list[str] = []
        self.console: list[str] = []  # what eKV / the crash cart shows
        #: names of user processes running on the node (cluster-kill's prey)
        self.user_processes: list[str] = []
        #: live anaconda progress while INSTALLING (Figure 7 / eKV screen)
        self.install_progress: Optional[Any] = None
        #: current installer phase name ("dhcp", "packages", ...) while
        #: INSTALLING; None otherwise — what monitoring agents report
        self.install_phase: Optional[str] = None
        self.install_driver: Optional[InstallDriver] = None
        self.install_count = 0
        self.last_install_report: Any = None
        #: tracer span of whatever caused the next installation (a
        #: campaign's per-node span, a mass-reinstall root); the install
        #: driver parents its span here.  None = the install is a root.
        self.trace_parent: Optional[Any] = None

        self._lifecycle: Optional[Process] = None
        self._install_proc: Optional[Process] = None
        self._state_waiters: list[tuple[MachineState, Any]] = []
        #: callbacks fired as fn(machine, new_state) on every transition
        self.on_state_change: list[Callable[["Machine", MachineState], None]] = []

    # -- identity -----------------------------------------------------------
    @property
    def hostid(self) -> str:
        """Stable network identity: the hostname once assigned, else the MAC."""
        return self.name or self.mac

    @property
    def ethernet(self) -> Nic:
        return self.spec.nics(self.mac)[0]

    @property
    def has_myrinet(self) -> bool:
        return self.spec.has_myrinet

    @property
    def os_installed(self) -> bool:
        return len(self.rpmdb) > 0

    @property
    def is_up(self) -> bool:
        return self.state is MachineState.UP

    # -- console ------------------------------------------------------------
    def console_write(self, line: str) -> None:
        self.console.append(f"[{self.env.now:10.1f}] {line}")

    # -- power control ------------------------------------------------------
    def power_on(self) -> None:
        if self.power is PowerState.ON:
            return
        self.power = PowerState.ON
        # POST is visible immediately so wait_for_state(UP) set up right
        # after power_on() waits for the *next* boot to finish.
        self._set_state(MachineState.POST)
        self._lifecycle = self.env.process(
            self._run_lifecycle(), name=f"lifecycle:{self.hostid}"
        )

    def power_off(self, hard: bool = False) -> None:
        """Cut power.  A *hard* cut marks the node for reinstall on next boot."""
        if self.power is PowerState.OFF:
            return
        self.power = PowerState.OFF
        if hard:
            self.reinstall_on_boot = True
        if self.state is MachineState.INSTALLING:
            # Power loss mid-install leaves a half-written root: no OS.
            self.rpmdb.wipe()
            root = self.root_partition()
            if root is not None:
                root.wipe()
        proc = self._lifecycle
        self._lifecycle = None
        if proc is not None and proc.is_alive and self.env.active_process is not proc:
            proc.interrupt("power removed")
        self._set_state(MachineState.OFF)

    def request_reinstall(self) -> None:
        """What shoot-node delivers: reboot into installation mode."""
        self.reinstall_on_boot = True
        self.reboot()

    def hang(self, cause: str = "kernel panic") -> None:
        """Freeze the node (§4's unresponsive case): only power recovers it.

        The OS stops running, so the Ethernet goes dark and any
        in-progress installation dies where it stands.  The recovery
        path is the paper's escalation — a hard PDU power cycle, which
        forces a reinstall.
        """
        if self.power is PowerState.OFF or self.state is MachineState.HUNG:
            return
        if self.state is MachineState.INSTALLING:
            # Dying mid-install leaves a half-written root: no OS.
            self.rpmdb.wipe()
            root = self.root_partition()
            if root is not None:
                root.wipe()
            self.reinstall_on_boot = True
        proc = self._lifecycle
        self._lifecycle = None
        if proc is not None and proc.is_alive and self.env.active_process is not proc:
            proc.interrupt(f"hang: {cause}")
        self.console_write(f"Kernel panic: {cause}")
        self._set_state(MachineState.HUNG)

    def reboot(self) -> None:
        """Soft reboot (graceful): restart the lifecycle without a hard cut."""
        if self.power is PowerState.OFF:
            self.power_on()
            return
        if self.state is MachineState.INSTALLING:
            # Rebooting mid-install abandons a half-written root: the
            # node is not bootable and must restart its installation.
            self.rpmdb.wipe()
            root = self.root_partition()
            if root is not None:
                root.wipe()
            self.reinstall_on_boot = True
        proc = self._lifecycle
        if proc is not None and proc.is_alive and self.env.active_process is not proc:
            proc.interrupt("reboot")
        self._set_state(MachineState.POST)
        self._lifecycle = self.env.process(
            self._run_lifecycle(), name=f"lifecycle:{self.hostid}"
        )

    # -- state machine --------------------------------------------------------
    def _set_state(self, state: MachineState) -> None:
        self.state = state
        for listener in list(self.on_state_change):
            listener(self, state)
        still_waiting = []
        for wanted, event in self._state_waiters:
            if wanted is state and not event.triggered:
                event.succeed(state)
            elif not event.triggered:
                still_waiting.append((wanted, event))
        self._state_waiters = still_waiting

    def wait_for_state(self, state: MachineState):
        """An event that triggers when the machine reaches ``state``."""
        event = self.env.event()
        if self.state is state:
            event.succeed(state)
        else:
            self._state_waiters.append((state, event))
        return event

    def cancel_wait(self, event) -> None:
        """Drop a pending wait_for_state event (the waiter lost interest).

        Dead-watches are armed per remote command; without cancellation
        every finished command would leave its never-to-trigger waiter
        in ``_state_waiters`` for the machine's whole lifetime — a slow
        leak at 10k-node campaign scale.
        """
        if not event.triggered:
            self._state_waiters = [
                (wanted, ev) for (wanted, ev) in self._state_waiters
                if ev is not event
            ]

    def _run_lifecycle(self) -> Generator:
        tracer = self.env.tracer
        boot_span = None
        if tracer.enabled and self.trace_parent is not None:
            # One span per caused boot attempt, POST through multi-user
            # UP, parented on whatever triggered it (a shoot, a storm's
            # power restore).  The install nests inside it, so the dark
            # POST/OS-boot windows attribute as node-boot time instead
            # of vanishing into root self-time.
            boot_span = tracer.span("boot", self.hostid,
                                    parent=self.trace_parent)
            self.trace_parent = boot_span
        outcome = "hung"
        try:
            # POST: the administrator is "in the dark" here (§4) — nothing
            # is visible over Ethernet until Linux configures the NIC.
            self._set_state(MachineState.POST)
            yield self.env.timeout(self.boot_times.sample_post(self.rng))

            if self.reinstall_on_boot or not self.os_installed:
                if self.install_driver is None:
                    self.console_write("no installation server configured; hung")
                    self._set_state(MachineState.HUNG)
                    return
                self._set_state(MachineState.INSTALLING)
                self.reinstall_on_boot = False
                self._install_proc = self.env.process(
                    self.install_driver(self), name=f"install:{self.hostid}"
                )
                try:
                    report = yield self._install_proc
                except Interrupt:
                    raise
                except Exception as err:  # install blew up: node is stuck
                    self._install_proc = None
                    self.console_write(f"installation failed: {err}")
                    self._set_state(MachineState.HUNG)
                    return
                self._install_proc = None
                self.last_install_report = report
                self.install_count += 1
                # fall through into the normal boot of the fresh OS
            self._set_state(MachineState.BOOTING)
            yield self.env.timeout(self.boot_times.boot_os)
            self.console_write("multi-user boot complete")
            self._set_state(MachineState.UP)
            outcome = "up"
        except Interrupt as interrupt:
            self.console_write(f"lifecycle interrupted: {interrupt.cause}")
            outcome = "interrupted"
            # Cascade: a running installation dies with its machine.
            child = self._install_proc
            self._install_proc = None
            if child is not None and child.is_alive:
                child.interrupt(interrupt.cause)
            return
        finally:
            if boot_span is not None:
                boot_span.end(outcome=outcome)
                if self.trace_parent is boot_span:
                    # The causal link is consumed: a later, uncaused
                    # boot must not parent on this ended span.
                    self.trace_parent = None

    # -- disks ----------------------------------------------------------------
    def root_partition(self) -> Optional[Partition]:
        for part in self.partitions.values():
            if part.is_root:
                return part
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Machine({self.hostid!r}, {self.spec.model}, "
            f"{self.power.value}/{self.state.value})"
        )
