"""Hardware catalog for simulated cluster machines.

Section 3.1 of the paper describes the SDSC "Meteor" cluster drifting
from homogeneous to *seven* node types across two CPU architectures,
three vendors and three disk-storage adapters — heterogeneity is the
normal state of a cluster.  The hardware model here carries exactly the
attributes the Rocks toolchain has to abstract over: CPU architecture
(drives which packages kickstart selects), disk controller type (drives
which driver module the installer must load), and NIC set (Ethernet is
the management/install path; Myrinet needs its driver rebuilt from
source on-node).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "CpuArch",
    "DiskController",
    "NicKind",
    "Cpu",
    "Disk",
    "Nic",
    "MachineSpec",
    "MacAllocator",
    "CATALOG",
]


class CpuArch(enum.Enum):
    """Processor families present in the Meteor cluster (§6.1)."""

    I386 = "i386"  # IA-32 (Pentium III era)
    ATHLON = "athlon"
    IA64 = "ia64"

    @property
    def rpm_arch(self) -> str:
        return self.value


class DiskController(enum.Enum):
    """Storage adapter types the installer must autodetect (§1)."""

    SCSI = "scsi"
    IDE = "ide"
    RAID = "raid"  # integrated RAID adapter

    @property
    def driver_module(self) -> str:
        return {"scsi": "aic7xxx", "ide": "ide-disk", "raid": "megaraid"}[self.value]

    @property
    def device_prefix(self) -> str:
        return {"scsi": "sd", "ide": "hd", "raid": "rd/c0d"}[self.value]


class NicKind(enum.Enum):
    ETHERNET = "ethernet"
    MYRINET = "myrinet"

    @property
    def driver_module(self) -> str:
        return {"ethernet": "eepro100", "myrinet": "gm"}[self.value]


@dataclass(frozen=True)
class Cpu:
    arch: CpuArch
    mhz: int
    count: int = 1

    def __post_init__(self):
        if self.mhz <= 0 or self.count <= 0:
            raise ValueError("CPU mhz and count must be positive")

    @property
    def relative_speed(self) -> float:
        """Throughput relative to the paper's 733 MHz reference node."""
        return self.mhz / 733.0


@dataclass(frozen=True)
class Disk:
    controller: DiskController
    size_gb: int = 20

    def __post_init__(self):
        if self.size_gb <= 0:
            raise ValueError("disk size must be positive")

    @property
    def device(self) -> str:
        return f"{self.controller.device_prefix}a"


@dataclass(frozen=True)
class Nic:
    kind: NicKind
    mac: str
    mbit: int = 100

    def __post_init__(self):
        if self.mbit <= 0:
            raise ValueError("NIC speed must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """A purchasable node configuration (vendor model)."""

    model: str
    cpu: Cpu
    disk: Disk
    has_myrinet: bool = False
    ethernet_mbit: int = 100
    vendor: str = "generic"
    memory_mb: int = 512

    def nics(self, mac_eth: str, mac_myri: Optional[str] = None) -> tuple[Nic, ...]:
        out = [Nic(NicKind.ETHERNET, mac_eth, self.ethernet_mbit)]
        if self.has_myrinet:
            out.append(Nic(NicKind.MYRINET, mac_myri or "00:60:dd:00:00:00", 1280))
        return tuple(out)

    def with_myrinet(self, present: bool = True) -> "MachineSpec":
        return replace(self, has_myrinet=present)


class MacAllocator:
    """Deterministic, collision-free Ethernet MAC addresses.

    Rocks identifies nodes by the MAC in their first DHCP request
    (insert-ethers, §6.4), so MACs must be stable across runs.
    """

    def __init__(self, oui: str = "00:50:8b"):
        if len(oui.split(":")) != 3:
            raise ValueError(f"OUI must be three octets, got {oui!r}")
        self.oui = oui
        self._next = 0
        self._issued: set[str] = set()

    def allocate(self) -> str:
        n = self._next
        self._next += 1
        mac = f"{self.oui}:{(n >> 16) & 0xFF:02x}:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}"
        self._issued.add(mac)
        return mac

    def issued(self) -> frozenset[str]:
        return frozenset(self._issued)


#: Named configurations used across examples and benchmarks.  The
#: reference machines match §6.3: the HTTP server is a dual 733 MHz PIII,
#: compute nodes are 733 MHz - 1 GHz PIIIs with Myrinet.
CATALOG: dict[str, MachineSpec] = {
    "pIII-733-dual": MachineSpec(
        "pIII-733-dual",
        Cpu(CpuArch.I386, 733, 2),
        Disk(DiskController.SCSI, 36),
        vendor="Compaq",
        memory_mb=1024,
    ),
    "pIII-733-myri": MachineSpec(
        "pIII-733-myri",
        Cpu(CpuArch.I386, 733),
        Disk(DiskController.IDE, 20),
        has_myrinet=True,
        vendor="Compaq",
    ),
    "pIII-1000-myri": MachineSpec(
        "pIII-1000-myri",
        Cpu(CpuArch.I386, 1000),
        Disk(DiskController.IDE, 30),
        has_myrinet=True,
        vendor="IBM",
    ),
    "athlon-1200": MachineSpec(
        "athlon-1200",
        Cpu(CpuArch.ATHLON, 1200),
        Disk(DiskController.IDE, 40),
        vendor="whitebox",
    ),
    "ia64-800-raid": MachineSpec(
        "ia64-800-raid",
        Cpu(CpuArch.IA64, 800, 2),
        Disk(DiskController.RAID, 72),
        vendor="HP",
        memory_mb=2048,
    ),
    "nfs-server": MachineSpec(
        "nfs-server",
        Cpu(CpuArch.I386, 866, 2),
        Disk(DiskController.RAID, 144),
        vendor="IBM",
        memory_mb=1024,
    ),
}
