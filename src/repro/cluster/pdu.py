"""Network-enabled power distribution units.

Section 4 of the paper: "If a compute node doesn't respond over the
network, it can be remotely power cycled by executing a hard power
cycle command for its outlet on a network-enabled power distribution
unit" — and a hard power cycle forces the node to reinstall itself.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..netsim import Environment
from .node import Machine

__all__ = ["PowerDistributionUnit", "OutletError"]


class OutletError(Exception):
    """Bad outlet number or unwired outlet."""


class PowerDistributionUnit:
    """A strip of remotely-switchable outlets, one machine per outlet."""

    #: seconds an outlet stays dark during a cycle command
    CYCLE_DELAY = 5.0

    def __init__(self, env: Environment, name: str, n_outlets: int = 24):
        if n_outlets <= 0:
            raise ValueError("a PDU needs at least one outlet")
        self.env = env
        self.name = name
        self.n_outlets = n_outlets
        self._outlets: dict[int, Machine] = {}
        self.cycles_issued = 0

    def wire(self, outlet: int, machine: Machine) -> None:
        """Plug a machine into an outlet."""
        self._check_outlet(outlet)
        if outlet in self._outlets:
            raise OutletError(f"outlet {outlet} on {self.name} already wired")
        self._outlets[outlet] = machine

    def unplug(self, outlet: int) -> Machine:
        """Unplug a wired outlet (rack rework); returns the machine."""
        self._check_outlet(outlet)
        try:
            return self._outlets.pop(outlet)
        except KeyError:
            raise OutletError(f"outlet {outlet} on {self.name} is not wired") from None

    def machine_at(self, outlet: int) -> Machine:
        self._check_outlet(outlet)
        try:
            return self._outlets[outlet]
        except KeyError:
            raise OutletError(f"outlet {outlet} on {self.name} is not wired") from None

    def outlets(self) -> list[tuple[int, Machine]]:
        """Wired outlets in deterministic (outlet-number) order."""
        return sorted(self._outlets.items())

    def outlet_of(self, machine: Machine) -> Optional[int]:
        for outlet, m in self._outlets.items():
            if m is machine:
                return outlet
        return None

    def power_off(self, outlet: int) -> None:
        self.machine_at(outlet).power_off(hard=True)

    def power_on(self, outlet: int) -> None:
        self.machine_at(outlet).power_on()

    def hard_cycle(self, outlet: int) -> "Generator":
        """Process: cut power, wait, restore.  Forces a reinstall."""
        machine = self.machine_at(outlet)
        self.cycles_issued += 1

        def cycle():
            machine.power_off(hard=True)
            yield self.env.timeout(self.CYCLE_DELAY)
            machine.power_on()

        return cycle()

    def _check_outlet(self, outlet: int) -> None:
        if not 0 <= outlet < self.n_outlets:
            raise OutletError(
                f"{self.name} has outlets 0..{self.n_outlets - 1}, got {outlet}"
            )
