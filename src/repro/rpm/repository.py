"""Package repositories: ordered collections of RPMs with lookup.

A repository models one *source* of software in the rocks-dist sense —
the stock Red Hat tree, the updates mirror, third-party contrib, or the
local site packages.  Repositories resolve dependencies (whatprovides)
and pick the newest build of a name, which is the primitive rocks-dist
builds on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .package import Dependency, Package

__all__ = ["Repository", "PackageNotFound"]


class PackageNotFound(KeyError):
    """Lookup failed for a package name or dependency."""

    def __init__(self, what: str):
        super().__init__(what)
        self.what = what

    def __str__(self) -> str:
        return f"no package found for {self.what!r}"


class Repository:
    """A named collection of packages, newest-aware."""

    def __init__(self, name: str, packages: Iterable[Package] = ()):
        self.name = name
        self._by_name: dict[str, list[Package]] = {}
        self._provides_index: dict[str, list[Package]] = {}
        for pkg in packages:
            self.add(pkg)

    # -- mutation ----------------------------------------------------------
    def add(self, pkg: Package) -> None:
        """Add a package; multiple versions of one name may coexist."""
        bucket = self._by_name.setdefault(pkg.name, [])
        if any(p.evr == pkg.evr and p.arch == pkg.arch for p in bucket):
            return  # identical build already present — idempotent
        bucket.append(pkg)
        self._provides_index.setdefault(pkg.name, []).append(pkg)
        for prov in pkg.provides:
            self._provides_index.setdefault(prov.name, []).append(pkg)

    def add_all(self, packages: Iterable[Package]) -> None:
        for pkg in packages:
            self.add(pkg)

    def remove(self, pkg: Package) -> None:
        self._by_name.get(pkg.name, []).remove(pkg)
        if not self._by_name.get(pkg.name):
            self._by_name.pop(pkg.name, None)
        for key in {pkg.name, *(p.name for p in pkg.provides)}:
            lst = self._provides_index.get(key, [])
            if pkg in lst:
                lst.remove(pkg)
            if not lst:
                self._provides_index.pop(key, None)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(v) for v in self._by_name.values())

    def __iter__(self) -> Iterator[Package]:
        for name in sorted(self._by_name):
            yield from sorted(self._by_name[name], key=lambda p: p.evr)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def versions(self, name: str) -> list[Package]:
        """All builds of ``name``, oldest first."""
        try:
            return sorted(self._by_name[name], key=lambda p: p.evr)
        except KeyError:
            raise PackageNotFound(name) from None

    def latest(self, name: str, arch: Optional[str] = None) -> Package:
        """The newest build of ``name`` (optionally restricted by arch)."""
        candidates = self._by_name.get(name, [])
        if arch is not None:
            candidates = [p for p in candidates if p.arch in (arch, "noarch")]
        if not candidates:
            raise PackageNotFound(name if arch is None else f"{name}.{arch}")
        return max(candidates, key=lambda p: p.evr)

    def get(self, name: str, default: Optional[Package] = None) -> Optional[Package]:
        try:
            return self.latest(name)
        except PackageNotFound:
            return default

    def whatprovides(self, dep: Dependency | str) -> list[Package]:
        """Packages satisfying ``dep``, best (newest) first."""
        if isinstance(dep, str):
            dep = Dependency.parse(dep)
        hits = [
            p for p in self._provides_index.get(dep.name, []) if p.satisfies(dep)
        ]
        return sorted(hits, key=lambda p: (p.evr, p.name), reverse=True)

    def best_provider(self, dep: Dependency | str) -> Package:
        hits = self.whatprovides(dep)
        if not hits:
            raise PackageNotFound(str(dep))
        return hits[0]

    def total_size(self) -> int:
        """Aggregate payload bytes of every package in the repository."""
        return sum(p.size for p in self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Repository({self.name!r}, {len(self)} packages)"
