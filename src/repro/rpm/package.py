"""The RPM package model.

The paper's management strategy rule #1 is "All software deployed on
Rocks clusters are in RPMs" — so the package is the atom of the whole
reproduction.  A :class:`Package` carries the NEVRA identity
(name-epoch-version-release-architecture), its payload size (what moves
over HTTP during a reinstall), dependency metadata (provides/requires/
obsoletes/conflicts), and optional scriptlets (%post is what Rocks's XML
node files compile into).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from .version import EVR, parse_evr

__all__ = ["Package", "Dependency", "DepFlag", "NOARCH"]

NOARCH = "noarch"


class DepFlag(enum.Enum):
    """Comparison operator attached to a versioned dependency."""

    ANY = "*"  # unversioned
    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Dependency:
    """A requires/provides/conflicts entry: name plus optional version range."""

    name: str
    flag: DepFlag = DepFlag.ANY
    evr: Optional[EVR] = None

    def __post_init__(self):
        if self.flag is not DepFlag.ANY and self.evr is None:
            raise ValueError(f"versioned dependency on {self.name!r} needs an EVR")
        if self.flag is DepFlag.ANY and self.evr is not None:
            raise ValueError(f"unversioned dependency on {self.name!r} cannot carry an EVR")

    @classmethod
    def parse(cls, text: str) -> "Dependency":
        """Parse e.g. ``"glibc >= 2.2"`` or just ``"glibc"``."""
        parts = text.split()
        if len(parts) == 1:
            return cls(parts[0])
        if len(parts) == 3:
            name, op, ver = parts
            return cls(name, DepFlag(op), parse_evr(ver))
        raise ValueError(f"cannot parse dependency {text!r}")

    def matches_evr(self, evr: EVR) -> bool:
        """Does a provider with version ``evr`` satisfy this dependency?"""
        if self.flag is DepFlag.ANY:
            return True
        assert self.evr is not None
        c = evr.compare(self.evr)
        return {
            DepFlag.EQ: c == 0,
            DepFlag.LT: c < 0,
            DepFlag.LE: c <= 0,
            DepFlag.GT: c > 0,
            DepFlag.GE: c >= 0,
        }[self.flag]

    def __str__(self) -> str:
        if self.flag is DepFlag.ANY:
            return self.name
        return f"{self.name} {self.flag.value} {self.evr}"


def _as_deps(items: Iterable) -> tuple[Dependency, ...]:
    out = []
    for item in items:
        if isinstance(item, Dependency):
            out.append(item)
        elif isinstance(item, str):
            out.append(Dependency.parse(item))
        else:
            raise TypeError(f"cannot treat {item!r} as a dependency")
    return tuple(out)


@dataclass(frozen=True)
class Package:
    """An immutable RPM package (binary or source)."""

    name: str
    version: str
    release: str = "1"
    epoch: int = 0
    arch: str = "i386"
    size: int = 1 << 20  # payload bytes; 1 MiB default
    group: str = "Unspecified"
    summary: str = ""
    requires: tuple[Dependency, ...] = ()
    provides: tuple[Dependency, ...] = ()
    obsoletes: tuple[Dependency, ...] = ()
    conflicts: tuple[Dependency, ...] = ()
    post_script: str = ""
    is_source: bool = False
    vendor: str = "Red Hat"

    def __post_init__(self):
        if not self.name:
            raise ValueError("package name cannot be empty")
        if self.size < 0:
            raise ValueError(f"package size cannot be negative: {self.size}")
        object.__setattr__(self, "requires", _as_deps(self.requires))
        object.__setattr__(self, "provides", _as_deps(self.provides))
        object.__setattr__(self, "obsoletes", _as_deps(self.obsoletes))
        object.__setattr__(self, "conflicts", _as_deps(self.conflicts))

    # -- identity ---------------------------------------------------------
    @property
    def evr(self) -> EVR:
        return EVR(self.version, self.release, self.epoch)

    @property
    def nvr(self) -> str:
        return f"{self.name}-{self.version}-{self.release}"

    @property
    def nevra(self) -> str:
        e = f"{self.epoch}:" if self.epoch else ""
        return f"{self.name}-{e}{self.version}-{self.release}.{self.arch}"

    @property
    def filename(self) -> str:
        ext = "src.rpm" if self.is_source else f"{self.arch}.rpm"
        return f"{self.name}-{self.version}-{self.release}.{ext}"

    @property
    def checksum(self) -> str:
        """Digest of the package payload, as rpm's header MD5 would carry.

        Derived from the NEVRA and size so it is stable across processes;
        the installer compares it against what actually arrived to detect
        corrupted downloads.
        """
        return f"{zlib.crc32(f'{self.nevra}:{self.size}'.encode()):08x}"

    # -- semantics ----------------------------------------------------------
    def newer_than(self, other: "Package") -> bool:
        """EVR comparison; used by rocks-dist to pick most recent software."""
        if self.name != other.name:
            raise ValueError(
                f"cannot compare versions across packages "
                f"({self.name!r} vs {other.name!r})"
            )
        return self.evr.strictly_compare(other.evr) > 0

    def satisfies(self, dep: Dependency) -> bool:
        """Does installing this package satisfy ``dep``?"""
        if dep.name == self.name and dep.matches_evr(self.evr):
            return True
        return any(
            p.name == dep.name
            and (p.flag is DepFlag.ANY or p.evr is None or dep.matches_evr(p.evr))
            for p in self.provides
        )

    def with_update(self, version: str, release: str = "1") -> "Package":
        """Derive an updated build of this package (new EVR, same metadata)."""
        return replace(self, version=version, release=release)

    def __str__(self) -> str:
        return self.nevra
