"""RPM version comparison — a faithful reimplementation of ``rpmvercmp``.

``rocks-dist`` "resolves version numbers of RPMs and only includes the
most recent software" (paper §6.2.1); that resolution is exactly RPM's
Epoch:Version-Release comparison, so we implement the real algorithm:

* strings are split into maximal alphabetic or numeric segments,
  separators are ignored except as segment boundaries;
* numeric segments compare as integers (leading zeros stripped) and
  always beat alphabetic segments;
* a tilde segment sorts *before* everything, including the empty string
  (the modern pre-release convention);
* when one string is a prefix of the other, the longer wins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

__all__ = ["rpmvercmp", "EVR", "label_compare", "parse_evr"]

_SEGMENT = re.compile(r"(\d+|[a-zA-Z]+|~)")


def _tokens(s: str) -> list[str]:
    return _SEGMENT.findall(s)


def rpmvercmp(a: str, b: str) -> int:
    """Compare two version (or release) strings RPM-style.

    Returns -1, 0, or 1 as ``a`` is older than, equal to, or newer than
    ``b``.
    """
    if a == b:
        return 0
    ta, tb = _tokens(a), _tokens(b)
    for xa, xb in zip(ta, tb):
        if xa == "~" or xb == "~":
            if xa != xb:
                return -1 if xa == "~" else 1
            continue
        a_num, b_num = xa.isdigit(), xb.isdigit()
        if a_num and b_num:
            ia, ib = int(xa), int(xb)
            if ia != ib:
                return -1 if ia < ib else 1
        elif a_num != b_num:
            # numeric segments are always newer than alphabetic ones
            return 1 if a_num else -1
        else:
            if xa != xb:
                return -1 if xa < xb else 1
    # Common prefix equal: a trailing tilde makes a string older;
    # otherwise the string with more segments is newer.
    if len(ta) == len(tb):
        return 0
    rest = ta[len(tb):] if len(ta) > len(tb) else tb[len(ta):]
    if rest and rest[0] == "~":
        return -1 if len(ta) > len(tb) else 1
    return 1 if len(ta) > len(tb) else -1


@total_ordering
@dataclass(frozen=True)
class EVR:
    """An Epoch:Version-Release triple with RPM ordering semantics."""

    version: str
    release: str = ""
    epoch: int = 0

    def __str__(self) -> str:
        core = self.version if not self.release else f"{self.version}-{self.release}"
        return core if self.epoch == 0 else f"{self.epoch}:{core}"

    def compare(self, other: "EVR") -> int:
        if self.epoch != other.epoch:
            return -1 if self.epoch < other.epoch else 1
        c = rpmvercmp(self.version, other.version)
        if c != 0:
            return c
        # An empty release matches any release (used by versioned deps
        # written as just "1.2").
        if not self.release or not other.release:
            return 0
        return rpmvercmp(self.release, other.release)

    def strictly_compare(self, other: "EVR") -> int:
        """Like :meth:`compare` but an empty release sorts oldest."""
        if self.epoch != other.epoch:
            return -1 if self.epoch < other.epoch else 1
        c = rpmvercmp(self.version, other.version)
        if c != 0:
            return c
        return rpmvercmp(self.release, other.release)

    def __lt__(self, other: "EVR") -> bool:
        return self.strictly_compare(other) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EVR):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.version == other.version
            and self.release == other.release
        )

    def __hash__(self) -> int:
        return hash((self.epoch, self.version, self.release))


def parse_evr(text: str) -> EVR:
    """Parse ``[epoch:]version[-release]`` into an :class:`EVR`."""
    epoch = 0
    if ":" in text:
        head, text = text.split(":", 1)
        epoch = int(head)
    if "-" in text:
        version, release = text.rsplit("-", 1)
    else:
        version, release = text, ""
    return EVR(version=version, release=release, epoch=epoch)


def label_compare(a: str, b: str) -> int:
    """Compare two ``[epoch:]version[-release]`` labels."""
    return parse_evr(a).compare(parse_evr(b))
