"""Spec files and ``rpmbuild`` — enough to model the kernel workflow.

Paper §3.3: to ship a custom kernel, the administrator crafts a
``.config``, runs ``make rpm`` (Red Hat's addition to the kernel
makefile), copies the binary RPM back to the frontend and binds it into
a new distribution with rocks-dist.  §6.3: the Myrinet driver ships as a
*source* RPM that every node rebuilds against its own kernel at install
time.  Both flows need a source-package + build step, modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .package import Dependency, Package

__all__ = ["SpecFile", "BuildError", "rpmbuild"]


class BuildError(Exception):
    """rpmbuild failed (missing build requirements, bad spec)."""


@dataclass(frozen=True)
class SpecFile:
    """A simplified RPM spec: identity, build deps, and outputs."""

    name: str
    version: str
    release: str = "1"
    summary: str = ""
    build_requires: tuple[Dependency, ...] = ()
    #: names of sub-packages produced (defaults to just ``name``)
    subpackages: tuple[str, ...] = ()
    #: payload size of each built binary package, bytes
    binary_size: int = 1 << 20
    #: simulated build duration in seconds per MHz-normalised CPU
    build_cost: float = 60.0
    post_script: str = ""

    def __post_init__(self):
        deps = tuple(
            d if isinstance(d, Dependency) else Dependency.parse(d)
            for d in self.build_requires
        )
        object.__setattr__(self, "build_requires", deps)

    def source_package(self, size: Optional[int] = None) -> Package:
        """The ``.src.rpm`` for this spec."""
        return Package(
            name=self.name,
            version=self.version,
            release=self.release,
            arch="src",
            size=size if size is not None else max(self.binary_size // 4, 1),
            summary=self.summary or f"Source for {self.name}",
            is_source=True,
        )


def rpmbuild(
    spec: SpecFile,
    arch: str = "i386",
    available: Sequence[Package] = (),
    extra_provides: Sequence[str] = (),
    version_suffix: str = "",
) -> list[Package]:
    """Build binary packages from ``spec``.

    ``available`` is the build environment's installed set; every
    BuildRequires must be satisfied by it (this is why nodes rebuilding
    the Myrinet driver need kernel-source and compilers installed —
    exactly what the paper's compute node file pulls in).

    ``version_suffix`` lets a driver embed the kernel version it was
    built for (module versioning), e.g. ``gm-1.4_2.4.9``.
    """
    missing = [
        str(dep)
        for dep in spec.build_requires
        if not any(p.satisfies(dep) for p in available)
    ]
    if missing:
        raise BuildError(
            f"cannot build {spec.name}: missing BuildRequires {', '.join(missing)}"
        )
    names = spec.subpackages or (spec.name,)
    version = spec.version + version_suffix
    built = []
    for name in names:
        built.append(
            Package(
                name=name,
                version=version,
                release=spec.release,
                arch=arch,
                size=spec.binary_size,
                summary=spec.summary,
                provides=tuple(Dependency.parse(p) for p in extra_provides),
                post_script=spec.post_script,
            )
        )
    return built
