"""RPM package management substrate.

Implements the pieces of Red Hat's package technology that Rocks builds
on: EVR version comparison (``rpmvercmp``), the package model,
repositories, the per-node installed database, dependency transactions,
spec files + ``rpmbuild``, and a deterministic synthetic Red Hat tree.
"""

from .package import NOARCH, DepFlag, Dependency, Package
from .repository import PackageNotFound, Repository
from .rpmdb import ConflictError, DependencyError, RpmDatabase, RpmError
from .specfile import BuildError, SpecFile, rpmbuild
from .synth import (
    MB,
    Update,
    UpdateStream,
    community_packages,
    npaci_packages,
    stock_redhat,
)
from .transaction import Transaction, install_order, resolve
from .version import EVR, label_compare, parse_evr, rpmvercmp

__all__ = [
    "NOARCH",
    "DepFlag",
    "Dependency",
    "Package",
    "PackageNotFound",
    "Repository",
    "ConflictError",
    "DependencyError",
    "RpmDatabase",
    "RpmError",
    "BuildError",
    "SpecFile",
    "rpmbuild",
    "MB",
    "Update",
    "UpdateStream",
    "community_packages",
    "npaci_packages",
    "stock_redhat",
    "Transaction",
    "install_order",
    "resolve",
    "EVR",
    "label_compare",
    "parse_evr",
    "rpmvercmp",
]
