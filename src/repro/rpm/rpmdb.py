"""The per-machine installed-package database (``/var/lib/rpm``).

Rocks answers "what version of software X do I have on node Y?" by
construction — a node's software state is fully described by its
kickstart — but the node still keeps an RPM database, and this module
models it: install/erase/upgrade with dependency and conflict checks,
plus ``verify`` which is exactly the consistency question the paper's
reinstall philosophy makes unnecessary to ask.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .package import Dependency, Package

__all__ = ["RpmDatabase", "RpmError", "DependencyError", "ConflictError"]


class RpmError(Exception):
    """Base class for RPM database failures."""


class DependencyError(RpmError):
    """An operation would leave unresolved requirements."""

    def __init__(self, problems: list[str]):
        super().__init__("; ".join(problems))
        self.problems = problems


class ConflictError(RpmError):
    """An install collides with an already-installed package."""


class RpmDatabase:
    """Installed packages on one machine."""

    def __init__(self):
        self._installed: dict[str, Package] = {}
        self._transactions = 0

    # -- queries (rpm -q) --------------------------------------------------
    def __len__(self) -> int:
        return len(self._installed)

    def __iter__(self) -> Iterator[Package]:
        return iter(sorted(self._installed.values(), key=lambda p: p.name))

    def __contains__(self, name: str) -> bool:
        return name in self._installed

    def query(self, name: str) -> Optional[Package]:
        """``rpm -q name`` — the installed build, or None."""
        return self._installed.get(name)

    def installed_names(self) -> list[str]:
        return sorted(self._installed)

    @property
    def transactions(self) -> int:
        """Count of completed install/erase operations (for drift studies)."""
        return self._transactions

    def provides(self, dep: Dependency | str) -> list[Package]:
        if isinstance(dep, str):
            dep = Dependency.parse(dep)
        return [p for p in self._installed.values() if p.satisfies(dep)]

    def is_satisfied(self, dep: Dependency | str) -> bool:
        return bool(self.provides(dep))

    # -- mutation (rpm -i / -e / -U) ----------------------------------------
    def install(self, pkg: Package, nodeps: bool = False) -> None:
        """Install one package; requires deps present unless ``nodeps``."""
        if pkg.is_source:
            raise RpmError(f"cannot install source package {pkg.nevra}")
        current = self._installed.get(pkg.name)
        if current is not None:
            if current.evr == pkg.evr:
                raise ConflictError(f"{pkg.nevra} is already installed")
            raise ConflictError(
                f"{pkg.name} already installed at {current.evr}; use upgrade()"
            )
        if not nodeps:
            missing = [
                str(dep)
                for dep in pkg.requires
                if not self.is_satisfied(dep) and not pkg.satisfies(dep)
            ]
            if missing:
                raise DependencyError(
                    [f"{pkg.nevra} requires {m}" for m in missing]
                )
        for conflict in pkg.conflicts:
            for other in self.provides(conflict):
                raise ConflictError(
                    f"{pkg.nevra} conflicts with installed {other.nevra}"
                )
        # Obsoletes: installing a package removes what it obsoletes.
        for obs in pkg.obsoletes:
            for victim in list(self.provides(obs)):
                self._installed.pop(victim.name, None)
        self._installed[pkg.name] = pkg
        self._transactions += 1

    def erase(self, name: str, force: bool = False) -> Package:
        """Remove a package; refuses to break other packages unless forced."""
        pkg = self._installed.get(name)
        if pkg is None:
            raise RpmError(f"package {name} is not installed")
        if not force:
            broken = []
            remaining = [p for p in self._installed.values() if p.name != name]
            for other in remaining:
                for dep in other.requires:
                    if pkg.satisfies(dep) and not any(
                        r.satisfies(dep) for r in remaining
                    ):
                        broken.append(f"{other.nevra} requires {dep}")
            if broken:
                raise DependencyError(broken)
        del self._installed[name]
        self._transactions += 1
        return pkg

    def upgrade(self, pkg: Package) -> Optional[Package]:
        """``rpm -U``: install, replacing any older build of the name.

        Returns the package that was replaced (None for a fresh install).
        Downgrades are refused — rocks-dist only moves forward.
        """
        current = self._installed.get(pkg.name)
        if current is not None:
            if not pkg.newer_than(current):
                raise ConflictError(
                    f"{pkg.nevra} is not newer than installed {current.nevra}"
                )
            del self._installed[pkg.name]
        try:
            self.install(pkg)
        except RpmError:
            if current is not None:  # restore on failure
                self._installed[pkg.name] = current
            raise
        return current

    # -- verification (rpm -V across the whole set) ---------------------------
    def unsatisfied(self) -> list[str]:
        """All dangling requirements in the installed set."""
        problems = []
        for pkg in self._installed.values():
            for dep in pkg.requires:
                if not self.is_satisfied(dep):
                    problems.append(f"{pkg.nevra} requires {dep}")
        return sorted(problems)

    def verify(self) -> bool:
        """True when every installed package's requirements are met."""
        return not self.unsatisfied()

    def diff(self, other: "RpmDatabase") -> dict[str, tuple[Optional[Package], Optional[Package]]]:
        """Configuration drift between two machines: name -> (mine, theirs).

        This is the expensive question ("are nodes consistent?") that the
        paper's reinstall-to-known-state strategy exists to avoid asking.
        """
        out: dict[str, tuple[Optional[Package], Optional[Package]]] = {}
        for name in set(self._installed) | set(other._installed):
            mine = self._installed.get(name)
            theirs = other._installed.get(name)
            if mine is None or theirs is None or mine.evr != theirs.evr:
                out[name] = (mine, theirs)
        return out

    def clone_state(self) -> "RpmDatabase":
        """Snapshot (used to model 'last known good state')."""
        snap = RpmDatabase()
        snap._installed = dict(self._installed)
        return snap

    def wipe(self) -> None:
        """Reinstallation: the base OS is soft state; drop everything."""
        self._installed.clear()

    def total_size(self) -> int:
        return sum(p.size for p in self._installed.values())
