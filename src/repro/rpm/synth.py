"""Synthetic Red Hat-like package universe.

The paper's substrate is a real Red Hat 7.2 tree (plus its 327 updates),
which we obviously cannot ship.  This module generates a deterministic
stand-in with the properties the experiments depend on:

* a curated core of real package names with realistic sizes and a
  requires graph (glibc at the bottom, compilers, servers, X, ...);
* enough library filler that a compute node's dependency closure comes
  out at the paper's **162 packages / ~225 MB** (§6.3, Figure 7);
* the community cluster software Rocks adds (MPICH, PVM, ATLAS, PBS,
  Maui, REXEC, the Myrinet GM *source* package);
* the NPACI local packages (rocks-dist, eKV, insert-ethers, profiles);
* an :class:`UpdateStream` reproducing §6.2.1's observation that Red Hat
  6.2 saw 124 updated packages in under a year — one every three days —
  a fraction of them security fixes.

Everything is seeded; two calls with the same arguments produce
identical repositories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from .package import Dependency, Package
from .repository import Repository

__all__ = [
    "stock_redhat",
    "community_packages",
    "npaci_packages",
    "UpdateStream",
    "Update",
    "BASE_FILLER_COUNT",
    "MB",
]

MB = 1_000_000

# ---------------------------------------------------------------------------
# Curated core: (name, version, size_bytes, requires, group)
# Sizes are loosely modelled on a real RH 7.2 tree.
# ---------------------------------------------------------------------------
_CORE: list[tuple[str, str, int, tuple[str, ...], str]] = [
    # the bottom of the world
    ("setup", "2.5.7", int(0.03 * MB), (), "System Environment/Base"),
    ("filesystem", "2.1.6", int(0.02 * MB), ("setup",), "System Environment/Base"),
    ("glibc", "2.2.4", int(15.0 * MB), ("filesystem",), "System Environment/Libraries"),
    ("bash", "2.05", int(1.9 * MB), ("glibc",), "System Environment/Shells"),
    ("dev", "3.0.6", int(0.34 * MB), ("filesystem",), "System Environment/Base"),
    ("fileutils", "4.1", int(1.6 * MB), ("glibc",), "System Environment/Base"),
    ("textutils", "2.0.14", int(1.1 * MB), ("glibc",), "System Environment/Base"),
    ("sh-utils", "2.0.11", int(0.9 * MB), ("glibc",), "System Environment/Base"),
    ("grep", "2.4.2", int(0.5 * MB), ("glibc",), "Applications/Text"),
    ("gawk", "3.1.0", int(1.5 * MB), ("glibc",), "Applications/Text"),
    ("sed", "3.02", int(0.2 * MB), ("glibc",), "Applications/Text"),
    ("tar", "1.13.25", int(1.1 * MB), ("glibc",), "Applications/Archiving"),
    ("gzip", "1.3", int(0.4 * MB), ("glibc",), "Applications/Archiving"),
    ("rpm", "4.0.3", int(3.1 * MB), ("glibc", "bash"), "System Environment/Base"),
    ("glib", "1.2.10", int(0.4 * MB), ("glibc",), "System Environment/Libraries"),
    ("popt", "1.6.3", int(0.1 * MB), ("glibc",), "System Environment/Libraries"),
    ("db3", "3.2.9", int(1.3 * MB), ("glibc",), "System Environment/Libraries"),
    ("ncurses", "5.2", int(5.1 * MB), ("glibc",), "System Environment/Libraries"),
    ("readline", "4.2", int(0.5 * MB), ("ncurses",), "System Environment/Libraries"),
    ("zlib", "1.1.3", int(0.1 * MB), ("glibc",), "System Environment/Libraries"),
    ("info", "4.0b", int(0.5 * MB), ("glibc",), "System Environment/Base"),
    ("chkconfig", "1.3.1", int(0.3 * MB), ("glibc",), "System Environment/Base"),
    ("initscripts", "6.40", int(1.2 * MB), ("bash", "chkconfig"), "System Environment/Base"),
    ("pam", "0.75", int(1.8 * MB), ("glibc", "db3"), "System Environment/Base"),
    ("shadow-utils", "20000902", int(1.7 * MB), ("pam",), "System Environment/Base"),
    ("util-linux", "2.11f", int(2.6 * MB), ("pam", "ncurses"), "System Environment/Base"),
    ("procps", "2.0.7", int(0.5 * MB), ("ncurses",), "Applications/System"),
    ("psmisc", "20.1", int(0.1 * MB), ("ncurses",), "Applications/System"),
    ("net-tools", "1.60", int(1.2 * MB), ("glibc",), "System Environment/Base"),
    ("iputils", "20001110", int(0.2 * MB), ("glibc",), "System Environment/Daemons"),
    ("modutils", "2.4.6", int(1.5 * MB), ("glibc",), "System Environment/Kernel"),
    ("mount", "2.11g", int(0.3 * MB), ("glibc",), "System Environment/Base"),
    ("e2fsprogs", "1.23", int(1.9 * MB), ("glibc",), "System Environment/Base"),
    ("mingetty", "0.9.4", int(0.03 * MB), ("glibc",), "System Environment/Base"),
    ("vixie-cron", "3.0.1", int(0.2 * MB), ("initscripts",), "System Environment/Base"),
    ("crontabs", "1.10", int(0.01 * MB), (), "System Environment/Base"),
    ("logrotate", "3.5.9", int(0.1 * MB), ("popt",), "System Environment/Base"),
    ("sysklogd", "1.4.1", int(0.3 * MB), ("initscripts",), "System Environment/Daemons"),
    ("syslinux", "1.52", int(0.3 * MB), ("glibc",), "Applications/System"),
    ("kernel", "2.4.9", int(10.0 * MB), ("modutils", "initscripts"), "System Environment/Kernel"),
    ("kernel-headers", "2.4.9", int(1.2 * MB), (), "Development/System"),
    ("kernel-source", "2.4.9", int(17.0 * MB), (), "Development/System"),
    ("mkinitrd", "3.2.6", int(0.1 * MB), ("e2fsprogs",), "System Environment/Base"),
    ("grub", "0.90", int(0.8 * MB), ("glibc",), "System Environment/Base"),
    # networking / daemons
    ("openssl", "0.9.6b", int(3.6 * MB), ("glibc",), "System Environment/Libraries"),
    ("openssh", "2.9p2", int(0.7 * MB), ("openssl",), "Applications/Internet"),
    ("openssh-clients", "2.9p2", int(0.9 * MB), ("openssh",), "Applications/Internet"),
    ("openssh-server", "2.9p2", int(0.5 * MB), ("openssh",), "System Environment/Daemons"),
    ("xinetd", "2.3.3", int(0.4 * MB), ("initscripts",), "System Environment/Daemons"),
    ("telnet", "0.17", int(0.1 * MB), ("glibc",), "Applications/Internet"),
    ("telnet-server", "0.17", int(0.1 * MB), ("xinetd",), "System Environment/Daemons"),
    ("wget", "1.7", int(0.9 * MB), ("openssl",), "Applications/Internet"),
    ("dhcp", "2.0", int(0.5 * MB), ("initscripts",), "System Environment/Daemons"),
    ("dhcpcd", "1.3.18", int(0.2 * MB), ("glibc",), "System Environment/Base"),
    ("bind", "9.1.3", int(2.1 * MB), ("openssl", "initscripts"), "System Environment/Daemons"),
    ("bind-utils", "9.1.3", int(1.5 * MB), ("openssl",), "Applications/System"),
    ("caching-nameserver", "7.1", int(0.01 * MB), ("bind",), "System Environment/Daemons"),
    ("portmap", "4.0", int(0.1 * MB), ("initscripts",), "System Environment/Daemons"),
    ("nfs-utils", "0.3.1", int(0.7 * MB), ("portmap",), "System Environment/Daemons"),
    ("ypbind", "1.8", int(0.1 * MB), ("portmap",), "System Environment/Daemons"),
    ("ypserv", "1.3.12", int(0.4 * MB), ("portmap",), "System Environment/Daemons"),
    ("yp-tools", "2.5", int(0.3 * MB), ("glibc",), "System Environment/Base"),
    ("apache", "1.3.20", int(2.4 * MB), ("initscripts",), "System Environment/Daemons"),
    ("mod_ssl", "2.8.4", int(0.6 * MB), ("apache", "openssl"), "System Environment/Daemons"),
    ("mysql", "3.23.41", int(6.5 * MB), ("glibc",), "Applications/Databases"),
    ("mysql-server", "3.23.41", int(3.8 * MB), ("mysql", "initscripts"), "Applications/Databases"),
    ("ntp", "4.1.0", int(1.8 * MB), ("initscripts",), "System Environment/Daemons"),
    # development
    ("binutils", "2.11.90", int(6.5 * MB), ("glibc",), "Development/Tools"),
    ("cpp", "2.96", int(0.6 * MB), ("glibc",), "Development/Languages"),
    ("gcc", "2.96", int(7.0 * MB), ("binutils", "cpp", "glibc-devel"), "Development/Languages"),
    ("gcc-g77", "2.96", int(3.8 * MB), ("gcc",), "Development/Languages"),
    ("gcc-c++", "2.96", int(3.4 * MB), ("gcc",), "Development/Languages"),
    ("glibc-devel", "2.2.4", int(6.5 * MB), ("glibc", "kernel-headers"), "Development/Libraries"),
    ("make", "3.79.1", int(0.8 * MB), ("glibc",), "Development/Tools"),
    ("autoconf", "2.13", int(0.7 * MB), ("gawk",), "Development/Tools"),
    ("automake", "1.4p5", int(0.9 * MB), ("autoconf",), "Development/Tools"),
    ("cvs", "1.11", int(2.0 * MB), ("glibc",), "Development/Tools"),
    ("gdb", "5.0rh", int(4.6 * MB), ("ncurses",), "Development/Debuggers"),
    ("strace", "4.3", int(0.3 * MB), ("glibc",), "Development/Debuggers"),
    ("flex", "2.5.4a", int(0.3 * MB), ("glibc",), "Development/Tools"),
    ("bison", "1.28", int(0.4 * MB), ("glibc",), "Development/Tools"),
    ("patch", "2.5.4", int(0.2 * MB), ("glibc",), "Development/Tools"),
    ("rcs", "5.7", int(0.8 * MB), ("glibc",), "Development/Tools"),
    ("python", "1.5.2", int(6.0 * MB), ("glibc", "readline"), "Development/Languages"),
    ("perl", "5.6.0", int(22.0 * MB), ("glibc",), "Development/Languages"),
    ("tcl", "8.3.3", int(2.3 * MB), ("glibc",), "Development/Languages"),
    ("tk", "8.3.3", int(2.8 * MB), ("tcl",), "Development/Languages"),
    ("expect", "5.32.2", int(1.3 * MB), ("tcl",), "Development/Languages"),
    # editors and interactive tools
    ("vim-minimal", "5.8", int(0.9 * MB), ("glibc",), "Applications/Editors"),
    ("vim-common", "5.8", int(4.8 * MB), ("vim-minimal",), "Applications/Editors"),
    ("emacs", "20.7", int(32.0 * MB), ("ncurses",), "Applications/Editors"),
    ("less", "358", int(0.2 * MB), ("ncurses",), "Applications/Text"),
    ("which", "2.12", int(0.02 * MB), ("glibc",), "Applications/System"),
    ("file", "3.35", int(0.3 * MB), ("glibc",), "Applications/File"),
    ("findutils", "4.1.7", int(0.3 * MB), ("glibc",), "Applications/File"),
    ("diffutils", "2.7.2", int(0.2 * MB), ("glibc",), "Applications/Text"),
    ("man", "1.5i2", int(0.5 * MB), ("less",), "System Environment/Base"),
    ("man-pages", "1.39", int(5.0 * MB), (), "Documentation"),
    ("rsync", "2.4.6", int(0.3 * MB), ("glibc",), "Applications/Internet"),
    ("screen", "3.9.9", int(0.6 * MB), ("ncurses",), "Applications/System"),
    ("sudo", "1.6.3p7", int(0.4 * MB), ("pam",), "Applications/System"),
    # X (frontend-only in practice, present in the tree)
    ("XFree86-libs", "4.1.0", int(8.2 * MB), ("glibc",), "User Interface/X"),
    ("XFree86", "4.1.0", int(30.0 * MB), ("XFree86-libs",), "User Interface/X"),
    ("xterm", "4.1.0", int(0.6 * MB), ("XFree86-libs",), "User Interface/X"),
]

#: number of generated filler library packages in the stock tree
BASE_FILLER_COUNT = 420
#: filler packages the synthetic "base" meta-package pulls onto every node
_BASE_PULL_COUNT = 77


def _filler_name(i: int) -> str:
    return f"lib{_SYLLABLES[i % len(_SYLLABLES)]}{i:03d}"


_SYLLABLES = (
    "xml", "jpeg", "png", "tiff", "gd", "ldap", "krb", "audio", "term",
    "gmp", "mm", "cap", "elf", "ffm", "ogg", "pci", "usb", "wrap",
)


def stock_redhat(
    version: str = "7.2",
    seed: int = 7,
    filler: int = BASE_FILLER_COUNT,
    arch: str = "i386",
) -> Repository:
    """Generate the stock Red Hat tree: curated core + filler libraries.

    Deterministic in (version, seed, filler, arch).
    """
    rng = random.Random((seed, version, arch, filler).__repr__())
    repo = Repository(f"redhat-{version}")
    for name, ver, size, reqs, group in _CORE:
        repo.add(
            Package(
                name=name,
                version=ver,
                release="5",
                arch="noarch" if group == "Documentation" else arch,
                size=size,
                group=group,
                summary=f"{name} from the stock tree",
                requires=tuple(Dependency(r) for r in reqs),
            )
        )
    # Filler libraries: lognormal-ish sizes averaging ~1.1 MB so that the
    # compute closure (core subset + _BASE_PULL_COUNT of these) lands on
    # the paper's 225 MB.
    base_reqs: list[str] = []
    for i in range(filler):
        size = int(min(rng.lognormvariate(13.0, 0.85), 12 * MB))
        pkg = Package(
            name=_filler_name(i),
            version=f"{rng.randint(0, 4)}.{rng.randint(0, 9)}.{rng.randint(0, 9)}",
            release=str(rng.randint(1, 9)),
            arch=arch,
            size=size,
            group="System Environment/Libraries",
            summary="support library",
            requires=(Dependency("glibc"),),
        )
        repo.add(pkg)
        if i < _BASE_PULL_COUNT:
            base_reqs.append(pkg.name)
    # The "base" meta-package: what every kickstarted node drags in.
    repo.add(
        Package(
            name="basesystem",
            version="7.0",
            release="2",
            arch="noarch",
            size=4096,
            group="System Environment/Base",
            summary="The skeleton package which defines a basic Red Hat system",
            requires=tuple(
                Dependency(n)
                for n in (
                    "setup", "filesystem", "glibc", "bash", "dev", "rpm",
                    "initscripts", "fileutils", "textutils", "sh-utils",
                    "grep", "gawk", "sed", "tar", "gzip", "procps",
                    "net-tools", "modutils", "mount", "e2fsprogs",
                    "util-linux", "shadow-utils", "mingetty", "vixie-cron",
                    "crontabs", "logrotate", "sysklogd", "mkinitrd", "grub",
                    "kernel", "dhcpcd", "which", "file", "findutils",
                    "diffutils", "less", "vim-minimal", "psmisc", "iputils",
                    "info", "man", "man-pages", "ntp",
                )
                + tuple(base_reqs)
            ),
        )
    )
    return repo


def community_packages(arch: str = "i386") -> Repository:
    """Cluster software Rocks bundles from the community (§4.1)."""
    repo = Repository("community")
    entries = [
        # (name, version, size MB, requires, summary)
        ("mpich", "1.2.2", 10.0, ("gcc", "gcc-g77"), "MPICH message passing (Ethernet + Myrinet devices)"),
        ("mpich-devel", "1.2.2", 6.0, ("mpich",), "MPICH headers and mpirun"),
        ("pvm", "3.4.3", 3.5, ("gcc",), "Parallel Virtual Machine (Ethernet device)"),
        ("atlas", "3.2.1", 8.0, ("glibc",), "ATLAS optimised BLAS from UTK ICL"),
        ("intel-mkl", "5.1", 12.0, ("glibc",), "Intel Math Kernel Library"),
        ("pbs", "2.3.12", 4.2, ("initscripts",), "Portable Batch System workload manager"),
        ("pbs-mom", "2.3.12", 1.1, ("pbs",), "PBS execution daemon for compute nodes"),
        ("maui", "3.0.6", 2.0, ("pbs",), "Maui scheduler"),
        ("rexec", "1.4", 0.4, ("openssl",), "UC Berkeley transparent remote execution"),
        ("ganglia-monitor-core", "2.1.1", 0.5, ("initscripts",), "Millennium cluster monitor"),
    ]
    for name, ver, size, reqs, summary in entries:
        repo.add(
            Package(
                name=name,
                version=ver,
                release="1",
                arch=arch,
                size=int(size * MB),
                group="Applications/Engineering",
                summary=summary,
                requires=tuple(Dependency(r) for r in reqs),
                vendor="community",
            )
        )
    # Myrinet GM driver ships as a SOURCE rpm: nodes rebuild it per-kernel.
    repo.add(
        Package(
            name="myrinet-gm",
            version="1.4",
            release="1",
            arch="src",
            size=int(2.8 * MB),
            group="System Environment/Kernel",
            summary="Myricom GM driver source (rebuilt on-node per kernel)",
            is_source=True,
            vendor="community",
        )
    )
    return repo


def npaci_packages(version: str = "2.2.1", arch: str = "noarch") -> Repository:
    """The NPACI-built local packages (the software this paper describes)."""
    repo = Repository("npaci")
    entries = [
        ("rocks-dist", 0.3, "Distribution building and mirroring tool"),
        ("rocks-ekv", 0.1, "Ethernet keyboard and video for kickstart installs"),
        ("rocks-insert-ethers", 0.1, "Populate the cluster database from DHCP requests"),
        ("rocks-shoot-node", 0.05, "Remote reinstallation trigger and monitor"),
        ("rocks-cluster-tools", 0.2, "cluster-fork, cluster-kill and friends"),
        ("rocks-kickstart-profiles", 0.4, "XML node and graph files for all appliances"),
        ("rocks-sql", 0.2, "Cluster configuration database schema and reports"),
    ]
    for name, size, summary in entries:
        repo.add(
            Package(
                name=name,
                version=version,
                release="1",
                arch=arch,
                size=int(size * MB),
                group="System Environment/Base",
                summary=summary,
                requires=(Dependency("python"),),
                vendor="NPACI",
            )
        )
    return repo


# ---------------------------------------------------------------------------
# Update stream (§6.2.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Update:
    """One released update: day offset, the new package, security flag."""

    day: int
    package: Package
    security: bool
    advisory: str


class UpdateStream:
    """A deterministic year of vendor updates against a base repository.

    Defaults reproduce the paper's §6.2.1 statistics for Red Hat 6.2:
    124 updated packages in under a year (one every ~3 days) with 74
    reported vulnerabilities, "several" of which drew targeted updates.
    """

    def __init__(
        self,
        base: Repository,
        seed: int = 62,
        updates_per_year: int = 124,
        security_fraction: float = 0.45,
        days: int = 360,
    ):
        self.base = base
        self.days = days
        rng = random.Random((seed, updates_per_year, days).__repr__())
        names = [n for n in base.names() if not n.startswith("lib")]
        names += [n for n in base.names() if n.startswith("lib")][:40]
        self._updates: list[Update] = []
        day_gap = days / updates_per_year
        day = 0.0
        for i in range(updates_per_year):
            day += rng.expovariate(1.0 / day_gap)
            name = rng.choice(names)
            current = base.latest(name)
            new = Package(
                name=current.name,
                version=current.version,
                release=f"{int(current.release.split('.')[0]) + 1 + i}",
                arch=current.arch,
                size=current.size,
                group=current.group,
                summary=current.summary,
                requires=current.requires,
                provides=current.provides,
            )
            security = rng.random() < security_fraction
            self._updates.append(
                Update(
                    day=int(min(day, days - 1)),
                    package=new,
                    security=security,
                    advisory=f"RHSA-2001:{900 + i}" if security else f"RHBA-2001:{900 + i}",
                )
            )

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def released_by(self, day: int) -> list[Update]:
        """All updates published on or before ``day``."""
        return [u for u in self._updates if u.day <= day]

    def security_updates(self) -> list[Update]:
        return [u for u in self._updates if u.security]

    def updates_repository(self, day: Optional[int] = None) -> Repository:
        """The updates mirror as of ``day`` (default: everything)."""
        repo = Repository(f"{self.base.name}-updates")
        for u in self._updates if day is None else self.released_by(day):
            repo.add(u.package)
        return repo

    def mean_days_between_updates(self) -> float:
        return self.days / max(len(self._updates), 1)
