"""Dependency resolution and install ordering (the anaconda depsolver).

Given a set of requested package names and a repository, a
:class:`Transaction` computes the dependency closure (what Kickstart
does when expanding a %packages list) and a deterministic installation
order that respects the requires graph — prerequisites first, cycles
broken at a deterministic edge, exactly the behaviour a node installer
needs to lay packages down one at a time over HTTP.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

from .package import Dependency, Package
from .repository import PackageNotFound, Repository
from .rpmdb import DependencyError

__all__ = ["Transaction", "resolve", "install_order"]


class Transaction:
    """A resolved package set plus its install order."""

    def __init__(self, packages: Sequence[Package], requested: Sequence[str]):
        self.packages = list(packages)
        self.requested = list(requested)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.packages]

    @property
    def total_size(self) -> int:
        return sum(p.size for p in self.packages)

    def __len__(self) -> int:
        return len(self.packages)

    def __iter__(self):
        return iter(self.packages)


def resolve(
    repo: Repository,
    names: Iterable[str],
    arch: Optional[str] = None,
) -> Transaction:
    """Compute the dependency closure of ``names`` against ``repo``.

    Providers are chosen deterministically: the newest build of the
    dependency's best provider.  Raises :class:`DependencyError` with the
    full requirement chain when something cannot be satisfied.
    """
    requested = list(names)
    chosen: dict[str, Package] = {}
    problems: list[str] = []
    queue: deque[tuple[Dependency, str]] = deque()

    for name in requested:
        queue.append((Dependency(name), "<requested>"))

    while queue:
        dep, wanted_by = queue.popleft()
        if any(p.satisfies(dep) for p in chosen.values()):
            continue
        try:
            if dep.flag is dep.flag.ANY and dep.name in repo:
                pkg = repo.latest(dep.name, arch=arch)
            else:
                pkg = _best_for_arch(repo, dep, arch)
        except PackageNotFound:
            problems.append(f"{wanted_by} requires {dep} (no provider)")
            continue
        if pkg.name in chosen:
            # Name already pinned but doesn't satisfy this dep: version clash.
            problems.append(
                f"{wanted_by} requires {dep} but {chosen[pkg.name].nevra} is selected"
            )
            continue
        chosen[pkg.name] = pkg
        for req in pkg.requires:
            queue.append((req, pkg.nevra))

    if problems:
        raise DependencyError(sorted(set(problems)))

    ordered = install_order(list(chosen.values()))
    return Transaction(ordered, requested)


def _best_for_arch(
    repo: Repository, dep: Dependency, arch: Optional[str]
) -> Package:
    hits = repo.whatprovides(dep)
    if arch is not None:
        hits = [p for p in hits if p.arch in (arch, "noarch")]
    if not hits:
        raise PackageNotFound(str(dep))
    return hits[0]


def install_order(packages: Sequence[Package]) -> list[Package]:
    """Topologically sort ``packages`` so prerequisites install first.

    Edges run from a package to each in-set package it requires.  Cycles
    (rpm has plenty: glibc <-> bash style) are broken deterministically by
    picking the alphabetically-first remaining package, which matches how
    rpm falls back to transaction ordering heuristics.
    """
    by_name = {p.name: p for p in packages}
    in_set = list(packages)

    # adjacency: pkg -> set of prerequisite package names within the set
    prereqs: dict[str, set[str]] = {}
    for pkg in in_set:
        wants: set[str] = set()
        for dep in pkg.requires:
            for other in in_set:
                if other.name != pkg.name and other.satisfies(dep):
                    wants.add(other.name)
        prereqs[pkg.name] = wants

    ordered: list[Package] = []
    remaining = {p.name for p in in_set}
    while remaining:
        ready = sorted(
            name for name in remaining if not (prereqs[name] & remaining)
        )
        if not ready:
            # Cycle: break it at the alphabetically-first member.
            ready = [sorted(remaining)[0]]
        for name in ready:
            ordered.append(by_name[name])
            remaining.discard(name)
    return ordered
