"""Custom kernel packaging: the ``make rpm`` workflow.

§3.3 of the paper: Rocks discourages kernel customisation (the stock Red
Hat kernel "has served us well"), but supports it — the administrator
crafts a ``.config``, runs ``make rpm`` (Red Hat's addition to the
kernel makefile), copies the binary kernel package to the frontend and
binds it into a new distribution with rocks-dist, then reinstalls the
desired nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rpm import MB, Package, SpecFile, rpmbuild

__all__ = ["KernelConfig", "make_rpm", "STOCK_KERNEL_VERSION"]

#: the Red Hat 7.2 stock kernel our synthetic tree ships
STOCK_KERNEL_VERSION = "2.4.9"


@dataclass(frozen=True)
class KernelConfig:
    """A kernel ``.config``: version plus the options that matter to us."""

    version: str = STOCK_KERNEL_VERSION
    release: str = "custom.1"
    smp: bool = True
    module_versioning: bool = True  # Red Hat default
    extra_options: tuple[str, ...] = ()

    @property
    def full_version(self) -> str:
        return f"{self.version}-{self.release}"


def make_rpm(config: KernelConfig, available: list[Package]) -> Package:
    """``make rpm`` in a prepared kernel tree: produce a kernel binary RPM.

    ``available`` must contain the toolchain (gcc, make) and the kernel
    source — the same prerequisites a real build host needs.
    """
    spec = SpecFile(
        name="kernel",
        version=config.version,
        release=config.release,
        summary=f"Custom kernel {config.full_version}"
        + (" SMP" if config.smp else ""),
        build_requires=("gcc", "make", "kernel-source"),
        binary_size=int(12 * MB),
    )
    built = rpmbuild(spec, available=available)
    return built[0]
