"""Kernel module versioning.

§6.3: "Because the Linux kernel has module versioning enabled (the
default for Red Hat compiled kernels), it will only load modules that
were compiled for that particular kernel version."  This is the reason
the Myrinet driver must be rebuilt from source on every node: keeping
N binary driver packages for N kernels does not scale when the stable
tree saw 16 updates in a year.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["KernelModule", "RunningKernel", "ModuleVersionError"]


class ModuleVersionError(Exception):
    """insmod refused: module built for a different kernel version."""


@dataclass(frozen=True)
class KernelModule:
    """A compiled .o/.ko: name plus the kernel version it targets."""

    name: str
    built_for: str  # kernel version string, e.g. "2.4.9-31"

    def __str__(self) -> str:
        return f"{self.name}.o ({self.built_for})"


class RunningKernel:
    """The kernel booted on a node, with its loaded-module table."""

    def __init__(self, version: str, module_versioning: bool = True):
        self.version = version
        self.module_versioning = module_versioning
        self._loaded: dict[str, KernelModule] = {}

    def insmod(self, module: KernelModule) -> None:
        """Load a module; enforces version match when versioning is on."""
        if self.module_versioning and module.built_for != self.version:
            raise ModuleVersionError(
                f"{module.name}: built for {module.built_for}, "
                f"running {self.version}"
            )
        if module.name in self._loaded:
            raise ModuleVersionError(f"{module.name} is already loaded")
        self._loaded[module.name] = module

    def rmmod(self, name: str) -> KernelModule:
        try:
            return self._loaded.pop(name)
        except KeyError:
            raise ModuleVersionError(f"{name} is not loaded") from None

    def lsmod(self) -> list[str]:
        return sorted(self._loaded)

    def is_loaded(self, name: str) -> bool:
        return name in self._loaded
