"""The Myrinet GM driver: source RPM rebuilt on-node per kernel.

§6.3: compute nodes with Myrinet rebuild the driver from a source RPM
on first boot after an installation; "the seemingly heavy-weight
solution adds only a 20-30% time penalty on reinstallation."  The
module can be compiled, installed and started *without* a reboot.

The rebuild duration model is calibrated so a 733 MHz reference node
spends ~20-30% of its total reinstall time here (Table I's times
"include the time taken to rebuild the Myrinet driver").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rpm import MB, Package, SpecFile, rpmbuild
from .modules import KernelModule

__all__ = ["MyrinetDriver", "GM_BUILD_SECONDS_AT_733MHZ"]

#: Wall seconds to configure + compile + package GM on the 733 MHz
#: reference node.  Chosen with the §6.3 calibration: a full reinstall is
#: ~600 s of which this rebuild is the dominant share of the 20-30%
#: Myrinet penalty.
GM_BUILD_SECONDS_AT_733MHZ = 130.0


@dataclass(frozen=True)
class MyrinetDriver:
    """The GM driver source package and its on-node build recipe."""

    version: str = "1.4"
    release: str = "1"

    @property
    def spec(self) -> SpecFile:
        return SpecFile(
            name="myrinet-gm",
            version=self.version,
            release=self.release,
            summary="Myricom GM driver (source)",
            build_requires=("gcc", "make", "kernel-source"),
            binary_size=int(1.2 * MB),
            build_cost=GM_BUILD_SECONDS_AT_733MHZ,
        )

    def source_package(self) -> Package:
        return self.spec.source_package(size=int(2.8 * MB))

    def build_seconds(self, cpu_relative_speed: float) -> float:
        """Compile time on a node of the given relative CPU speed."""
        if cpu_relative_speed <= 0:
            raise ValueError("relative CPU speed must be positive")
        return GM_BUILD_SECONDS_AT_733MHZ / cpu_relative_speed

    def rebuild(
        self, kernel_version: str, available: list[Package]
    ) -> tuple[Package, KernelModule]:
        """Compile GM against the running kernel.

        Returns the binary package and the loadable module, which will
        only insmod on ``kernel_version`` (module versioning).
        """
        built = rpmbuild(
            self.spec,
            available=available,
            version_suffix=f"_{kernel_version}",
        )
        module = KernelModule("gm", built_for=kernel_version)
        return built[0], module
