"""Kernel substrate: module versioning, ``make rpm``, the GM driver."""

from .kernelpkg import STOCK_KERNEL_VERSION, KernelConfig, make_rpm
from .modules import KernelModule, ModuleVersionError, RunningKernel
from .myrinet import GM_BUILD_SECONDS_AT_733MHZ, MyrinetDriver

__all__ = [
    "STOCK_KERNEL_VERSION",
    "KernelConfig",
    "make_rpm",
    "KernelModule",
    "ModuleVersionError",
    "RunningKernel",
    "GM_BUILD_SECONDS_AT_733MHZ",
    "MyrinetDriver",
]
