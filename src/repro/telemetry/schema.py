"""The trace wire format and its validator.

A trace is JSON Lines: one object per line, each carrying a ``type``
field.  Line 1 is always the ``meta`` header; span/event records follow
in sequence order; counters and gauges (sorted by name) close the file.
The validator is hand-rolled — no external jsonschema dependency — and
is what CI runs against every exported benchmark trace.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "KNOWN_KINDS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_text",
]

TRACE_FORMAT = "repro-trace"
#: version 2 added trace context: ``span_id``/``parent_id``/``trace_id``
#: on spans (required) and on events (optional, present when parented).
TRACE_VERSION = 2

_NUMBER = (int, float)

#: type tag -> {field: allowed python types}; None in a tuple means nullable.
_REQUIRED_FIELDS: dict[str, dict[str, tuple]] = {
    "meta": {
        "format": (str,),
        "version": (int,),
        "clock": (str,),
    },
    "span": {
        "seq": (int,),
        "span_id": (int,),
        "parent_id": (int, type(None)),
        "trace_id": (int,),
        "kind": (str,),
        "name": (str,),
        "t0": _NUMBER,
        "t1": _NUMBER + (type(None),),
        "attrs": (dict,),
    },
    "event": {
        "seq": (int,),
        "kind": (str,),
        "name": (str,),
        "t": _NUMBER,
        "attrs": (dict,),
    },
    "counter": {
        "name": (str,),
        "value": _NUMBER,
    },
    "gauge": {
        "name": (str,),
        "samples": (list,),
    },
}

#: Fields that may appear on a record type but are not required.
_OPTIONAL_FIELDS: dict[str, dict[str, tuple]] = {
    "event": {
        "parent_id": (int,),
        "trace_id": (int,),
    },
}

#: Every span/event ``kind`` the instrumented simulation emits, one
#: entry per taxonomy bullet in :mod:`repro.telemetry.tracer`.  The
#: validator does not reject unknown kinds (traces must stay forward-
#: compatible) — this set exists so tools like the critical-path
#: analyzer and the Chrome exporter can classify records by kind.
KNOWN_KINDS = frozenset({
    "install", "install-phase",
    "http", "http-queue", "http-reject",
    "flow",
    "service", "fault",
    "campaign", "campaign-node", "reinstall",
    "download-retry", "download-failed", "download-timeout",
    "retry-wait", "dead-wait", "shoot", "boot",
    "exec", "exec-node", "exec-retry", "exec-straggler",
    "storm", "autoscale",
    "supervisor-restart", "supervisor-degraded",
    "breaker", "frontend-crash", "journal-replay",
    "alert", "alert-clear",
})


def validate_record(obj: Any) -> list[str]:
    """Problems with one decoded record (empty list = valid)."""
    if not isinstance(obj, dict):
        return [f"record is {type(obj).__name__}, expected object"]
    tag = obj.get("type")
    if tag not in _REQUIRED_FIELDS:
        return [f"unknown record type {tag!r}"]
    problems = []
    for field, types in _REQUIRED_FIELDS[tag].items():
        if field not in obj:
            problems.append(f"{tag}: missing field {field!r}")
        elif not isinstance(obj[field], types):
            problems.append(
                f"{tag}: field {field!r} is {type(obj[field]).__name__}"
            )
    for field, types in _OPTIONAL_FIELDS.get(tag, {}).items():
        if field in obj and not isinstance(obj[field], types):
            problems.append(
                f"{tag}: field {field!r} is {type(obj[field]).__name__}"
            )
    if tag == "span" and not problems:
        if obj["t1"] is not None and obj["t1"] < obj["t0"]:
            problems.append(f"span: t1 {obj['t1']} precedes t0 {obj['t0']}")
        if obj["span_id"] != obj["seq"]:
            problems.append(
                f"span: span_id {obj['span_id']} != seq {obj['seq']}"
            )
        if obj["parent_id"] is None and obj["trace_id"] != obj["span_id"]:
            problems.append(
                f"span: root trace_id {obj['trace_id']} != span_id "
                f"{obj['span_id']}"
            )
    if tag == "gauge" and not problems:
        for i, sample in enumerate(obj["samples"]):
            if (
                not isinstance(sample, list)
                or len(sample) != 2
                or not isinstance(sample[0], _NUMBER)
                or not isinstance(sample[1], _NUMBER)
            ):
                problems.append(f"gauge {obj['name']!r}: sample {i} is not [t, value]")
                break
    if tag == "meta" and not problems:
        if obj["format"] != TRACE_FORMAT:
            problems.append(f"meta: format {obj['format']!r} != {TRACE_FORMAT!r}")
        if obj["version"] > TRACE_VERSION:
            problems.append(f"meta: version {obj['version']} is from the future")
    return problems


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Validate a whole JSONL trace; returns all problems found."""
    problems: list[str] = []
    last_seq = -1
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        n += 1
        try:
            obj = json.loads(line)
        except ValueError as err:
            problems.append(f"line {lineno}: not JSON ({err})")
            continue
        if n == 1 and (not isinstance(obj, dict) or obj.get("type") != "meta"):
            problems.append(f"line {lineno}: first record must be the meta header")
        problems.extend(f"line {lineno}: {p}" for p in validate_record(obj))
        if isinstance(obj, dict) and isinstance(obj.get("seq"), int):
            if obj["seq"] <= last_seq:
                problems.append(f"line {lineno}: seq {obj['seq']} out of order")
            last_seq = obj["seq"]
    if n == 0:
        problems.append("trace is empty")
    return problems


def validate_trace_text(text: str) -> list[str]:
    return validate_trace_lines(text.splitlines())
