"""Simulation telemetry: structured tracing + metrics.

The observability layer the CERN/Brookhaven operations papers call for:
a :class:`Tracer` attached to an :class:`~repro.netsim.Environment`
records typed, simulated-time-stamped spans and events from every
instrumented subsystem (netsim flows and HTTP, the anaconda installer,
services, fault injection, reinstall campaigns), and its
:class:`Metrics` registry collects counters and time-weighted gauges
(per-link utilization timeseries, concurrent-install counts).

Tracing is **off by default and zero-overhead when off**: environments
start with the no-op :data:`NULL_TRACER`.  Opt in per run::

    from repro import build_cluster
    from repro.telemetry import Tracer, to_jsonl, summarize

    tracer = Tracer()
    sim = build_cluster(n_compute=8, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    print(to_jsonl(tracer))          # JSONL export (schema-validated)
    print(summarize(tracer))         # p50/p95/max per phase, peak link util
"""

from .metrics import Metrics, NullMetrics
from .tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer
from .export import iter_trace_records, to_dict, to_jsonl, write_jsonl
from .chrome import chrome_trace_events, to_chrome_json, write_chrome_json
from .critpath import (
    TraceDAG,
    build_dag,
    critical_path,
    dag_from_tracer,
    explain_tracer,
    pick_root,
    render_report,
)
from .schema import (
    KNOWN_KINDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    validate_record,
    validate_trace_lines,
    validate_trace_text,
)
from .summary import percentile, render_summary, summarize

__all__ = [
    "Metrics",
    "NullMetrics",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "iter_trace_records",
    "to_dict",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_json",
    "TraceDAG",
    "build_dag",
    "critical_path",
    "dag_from_tracer",
    "explain_tracer",
    "pick_root",
    "render_report",
    "KNOWN_KINDS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_text",
    "percentile",
    "render_summary",
    "summarize",
]
