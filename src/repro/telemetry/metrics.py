"""Counters and time-weighted gauges keyed to simulated time.

A :class:`Metrics` registry holds

* **counters** — monotonically increasing totals (requests served,
  download retries, bytes moved);
* **gauges** — step functions of simulated time, recorded as
  ``(t, value)`` samples whenever the value changes (per-link
  utilization, concurrent-install count).

Gauges are step-sampled, so their time-weighted mean and peak are exact
for the piecewise-constant quantities the simulation produces, and the
sample list doubles as an exportable timeseries.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Metrics", "NullMetrics"]


class Metrics:
    """A registry of named counters and time-weighted gauge timeseries."""

    def __init__(self):
        self.env = None
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, list[tuple[float, float]]] = {}

    def attach(self, env) -> "Metrics":
        self.env = env
        return self

    @property
    def now(self) -> float:
        return 0.0 if self.env is None else self.env.now

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, n: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + n

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # -- gauges ------------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Record that ``name`` has ``value`` from now on (skip no-ops)."""
        samples = self._gauges.setdefault(name, [])
        if samples and samples[-1][1] == value:
            return
        if samples and samples[-1][0] == self.now:
            samples[-1] = (self.now, float(value))
            # Collapse a same-instant overwrite back into a no-op sample.
            if len(samples) >= 2 and samples[-2][1] == value:
                samples.pop()
            return
        samples.append((self.now, float(value)))

    def adjust(self, name: str, delta: float) -> float:
        """Step a gauge by ``delta`` relative to its latest value."""
        samples = self._gauges.get(name)
        current = samples[-1][1] if samples else 0.0
        value = current + delta
        self.gauge(name, value)
        return value

    def samples(self, name: str) -> list[tuple[float, float]]:
        return list(self._gauges.get(name, ()))

    def gauge_names(self) -> list[str]:
        return sorted(self._gauges)

    def value(self, name: str) -> float:
        samples = self._gauges.get(name)
        return samples[-1][1] if samples else 0.0

    # -- aggregates --------------------------------------------------------
    def peak(self, name: str) -> float:
        samples = self._gauges.get(name)
        return max(v for _, v in samples) if samples else 0.0

    def time_weighted_mean(self, name: str, until: Optional[float] = None) -> float:
        """Mean of the gauge's step function from its first sample to ``until``."""
        samples = self._gauges.get(name)
        if not samples:
            return 0.0
        end = self.now if until is None else until
        total = 0.0
        for (t0, v), (t1, _) in zip(samples, samples[1:]):
            total += v * (t1 - t0)
        last_t, last_v = samples[-1]
        total += last_v * max(end - last_t, 0.0)
        duration = end - samples[0][0]
        return total / duration if duration > 0 else samples[-1][1]


class NullMetrics:
    """No-op registry used by the null tracer."""

    def attach(self, env) -> "NullMetrics":
        return self

    def inc(self, name: str, n: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def adjust(self, name: str, delta: float) -> float:
        return 0.0

    def counter(self, name: str) -> float:
        return 0.0

    @property
    def counters(self) -> dict[str, float]:
        return {}

    def samples(self, name: str) -> list:
        return []

    def gauge_names(self) -> list[str]:
        return []

    def value(self, name: str) -> float:
        return 0.0

    def peak(self, name: str) -> float:
        return 0.0

    def time_weighted_mean(self, name: str, until: Optional[float] = None) -> float:
        return 0.0
