"""Trace aggregation: the numbers behind a run's behaviour.

``summarize`` reduces a trace to the questions an administrator asks of
a Table I run: how long did each install phase take (p50/p95/max), which
link saturated and when (peak utilization), how many retries fired, how
many installs ran at once.  ``render_summary`` formats that as the text
report the ``trace`` CLI subcommand prints.
"""

from __future__ import annotations

import math
from typing import Optional

from .tracer import Span, Tracer

__all__ = ["percentile", "summarize", "render_summary"]

#: Gauge-name prefix the flow network uses for per-link utilization.
LINK_UTIL_PREFIX = "link.util/"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Edge cases are exact and locked in by tests:

    * ``q`` outside ``[0, 1]`` raises ``ValueError`` — even for an
      empty series (the early 0.0 return used to mask e.g. a caller
      passing 95 instead of 0.95);
    * an **empty** series returns ``0.0`` for any valid ``q`` — there
      is no data to rank, and summary tables render 0.0, not NaN;
    * a **single-sample** series returns that sample for every valid
      ``q`` (nearest-rank with n=1 clamps the rank to 1), so p50 and
      p95 of one observation are both the observation itself.
    """
    if not 0 <= q <= 1:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q * len(ordered))), 1)
    return ordered[rank - 1]


def _span_stats(durations: list[float]) -> dict:
    return {
        "count": len(durations),
        "p50": percentile(durations, 0.50),
        "p95": percentile(durations, 0.95),
        "p99": percentile(durations, 0.99),
        "max": max(durations, default=0.0),
        "total": sum(durations),
    }


def summarize(tracer: Tracer) -> dict:
    """Aggregate a trace into per-kind span stats, phases, and peaks."""
    by_kind: dict[str, list[float]] = {}
    by_phase: dict[str, list[float]] = {}
    open_spans = 0
    open_by_kind: dict[str, int] = {}
    for span in tracer.spans():
        if span.t1 is None:
            # Open spans are counted, never aggregated: a null duration
            # must not poison the p50/p95 tables below.
            open_spans += 1
            open_by_kind[span.kind] = open_by_kind.get(span.kind, 0) + 1
            continue
        by_kind.setdefault(span.kind, []).append(span.duration)
        if span.kind == "install-phase":
            by_phase.setdefault(span.name, []).append(span.duration)
    metrics = tracer.metrics
    peak_util = {
        name[len(LINK_UTIL_PREFIX):]: metrics.peak(name)
        for name in metrics.gauge_names()
        if name.startswith(LINK_UTIL_PREFIX)
    }
    gauges = {
        name: {
            "peak": metrics.peak(name),
            "mean": metrics.time_weighted_mean(name),
            "samples": len(metrics.samples(name)),
        }
        for name in metrics.gauge_names()
    }
    return {
        "end_time": tracer.now,
        "n_records": tracer.n_records,
        "open_spans": open_spans,
        "open_by_kind": dict(sorted(open_by_kind.items())),
        "spans": {kind: _span_stats(d) for kind, d in sorted(by_kind.items())},
        "phases": {name: _span_stats(d) for name, d in sorted(by_phase.items())},
        "peak_link_utilization": peak_util,
        "counters": dict(sorted(metrics.counters.items())),
        "gauges": gauges,
    }


def render_summary(summary: dict, top_links: Optional[int] = 8) -> str:
    """Human-readable report of a :func:`summarize` result."""
    lines = [
        f"trace summary: {summary['n_records']} records, "
        f"simulated end t={summary['end_time']:.1f}s"
        + (f", {summary['open_spans']} spans left open"
           if summary["open_spans"] else "")
    ]
    if summary.get("open_by_kind"):
        detail = ", ".join(
            f"{kind}={count}" for kind, count in summary["open_by_kind"].items()
        )
        lines.append(f"open spans by kind: {detail}")
    if summary["phases"]:
        lines.append("install phases (seconds):")
        lines.append(f"  {'phase':<12} {'count':>5} {'p50':>8} {'p95':>8} {'max':>8}")
        for name, s in summary["phases"].items():
            lines.append(
                f"  {name:<12} {s['count']:>5} {s['p50']:>8.1f} "
                f"{s['p95']:>8.1f} {s['max']:>8.1f}"
            )
    other = {k: s for k, s in summary["spans"].items() if k != "install-phase"}
    if other:
        lines.append("spans (seconds):")
        lines.append(f"  {'kind':<14} {'count':>5} {'p50':>8} {'p95':>8} {'max':>8}")
        for kind, s in other.items():
            lines.append(
                f"  {kind:<14} {s['count']:>5} {s['p50']:>8.1f} "
                f"{s['p95']:>8.1f} {s['max']:>8.1f}"
            )
    peaks = summary["peak_link_utilization"]
    if peaks:
        lines.append("peak link utilization:")
        busiest = sorted(peaks.items(), key=lambda kv: (-kv[1], kv[0]))
        if top_links is not None:
            busiest = busiest[:top_links]
        for name, peak in busiest:
            lines.append(f"  {name:<20} {100 * peak:6.1f}%")
    if summary["counters"]:
        lines.append("counters:")
        for name, value in summary["counters"].items():
            shown = int(value) if value == int(value) else value
            lines.append(f"  {name:<28} {shown}")
    return "\n".join(lines)
