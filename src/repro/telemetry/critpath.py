"""Critical-path analysis over a span DAG: why was this run slow?

The tracer gives every span a deterministic ``span_id``/``parent_id``/
``trace_id`` (see :mod:`repro.telemetry.tracer`), which makes a trace a
forest of causality trees: a reinstall campaign parents per-node spans,
which parent anaconda phases, which parent HTTP GETs, which parent
network flows.  This module reconstructs that forest
(:func:`build_dag`), walks backwards from the end of any root span to
extract its *critical path* — the chain of spans that actually gated
the end-to-end time (:func:`critical_path`) — and attributes every
second of it to a named resource: frontend admission queues, saturated
links, retry backoffs, dead-node waits (:func:`attribute`).

Everything here is pure arithmetic over simulated timestamps, so the
rendered report (:func:`render_report`) is byte-identical for a fixed
seed — CI compares it against committed goldens exactly like traces.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .summary import percentile
from .tracer import Tracer

__all__ = [
    "SpanNode",
    "TraceDAG",
    "Segment",
    "build_dag",
    "dag_from_tracer",
    "critical_path",
    "attribute",
    "blocked_stats",
    "pick_root",
    "render_report",
    "explain_tracer",
]

#: Root-span kinds `pick_root` prefers, most interesting first.
ROOT_KINDS = ("campaign", "reinstall", "storm", "exec", "install")

#: Segment resources counted as the root's own (unattributed) overhead.
_ROOT_SELF = frozenset(
    f"self/{kind}" for kind in ("campaign", "reinstall", "storm", "exec")
)


class SpanNode:
    """One span in the reconstructed DAG."""

    __slots__ = ("span_id", "parent_id", "trace_id", "kind", "name",
                 "t0", "t1", "attrs", "children", "orphan")

    def __init__(self, record: dict):
        self.span_id = record["span_id"]
        self.parent_id = record["parent_id"]
        self.trace_id = record["trace_id"]
        self.kind = record["kind"]
        self.name = record["name"]
        self.t0 = record["t0"]
        self.t1 = record["t1"]  # None = left open at export
        self.attrs = record["attrs"]
        self.children: list[SpanNode] = []
        self.orphan = False  # parent_id referenced a span not in the trace

    @property
    def is_open(self) -> bool:
        return self.t1 is None

    def end_or(self, fallback: float) -> float:
        """The span's end, with open spans clamped to ``fallback``."""
        return fallback if self.t1 is None else self.t1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanNode({self.kind}/{self.name} #{self.span_id})"


class TraceDAG:
    """A span forest indexed by id, with open spans clamped to trace end."""

    def __init__(self, nodes: dict[int, SpanNode], end_time: float):
        self.nodes = nodes
        self.end_time = end_time
        self.roots: list[SpanNode] = []
        self.orphans: list[SpanNode] = []
        self.open_spans: list[SpanNode] = []
        for node in nodes.values():
            if node.is_open:
                self.open_spans.append(node)
            if node.parent_id is None:
                self.roots.append(node)
            elif node.parent_id in nodes:
                nodes[node.parent_id].children.append(node)
            else:
                # Orphan: its parent never made it into the trace (e.g. a
                # truncated export).  Promote to root so its subtree still
                # gets analysed, but remember the dangling edge.
                node.orphan = True
                self.roots.append(node)
                self.orphans.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda c: (c.t0, c.span_id))
        self.roots.sort(key=lambda n: (n.t0, n.span_id))

    def node(self, span_id: int) -> SpanNode:
        return self.nodes[span_id]

    def spans(self, kind: Optional[str] = None) -> list[SpanNode]:
        ordered = sorted(self.nodes.values(), key=lambda n: n.span_id)
        return [n for n in ordered if kind is None or n.kind == kind]


def build_dag(records: Iterable[dict]) -> TraceDAG:
    """Reconstruct the span forest from decoded trace records.

    Accepts any iterable of record dicts (e.g. a parsed JSONL trace);
    non-span records are skipped.  Open spans (``t1: null``) are kept
    and clamped to the latest timestamp seen anywhere in the trace.
    """
    nodes: dict[int, SpanNode] = {}
    end_time = 0.0
    for record in records:
        rtype = record.get("type")
        if rtype == "span":
            node = SpanNode(record)
            nodes[node.span_id] = node
            end_time = max(end_time, node.t0)
            if node.t1 is not None:
                end_time = max(end_time, node.t1)
        elif rtype == "event":
            end_time = max(end_time, record["t"])
        elif rtype == "meta" and isinstance(record.get("end_time"), (int, float)):
            end_time = max(end_time, record["end_time"])
    return TraceDAG(nodes, end_time)


def dag_from_tracer(tracer: Tracer) -> TraceDAG:
    return build_dag(tracer.iter_records())


class Segment:
    """A half-open slice ``[t0, t1)`` of the critical path.

    ``node`` is the innermost span active over the slice — either a
    leaf, or a parent whose children left the slice uncovered (its
    *self time*).
    """

    __slots__ = ("t0", "t1", "node")

    def __init__(self, t0: float, t1: float, node: SpanNode):
        self.t0 = t0
        self.t1 = t1
        self.node = node

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def resource(self) -> str:
        return classify(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Segment({self.t0:.2f}..{self.t1:.2f} "
                f"{self.resource} #{self.node.span_id})")


def critical_path(dag: TraceDAG, root: SpanNode) -> list[Segment]:
    """The chain of spans gating ``root``'s end-to-end time.

    Walks backwards from the root's end: at any instant the blocker is
    the child active then that finished last; time no child covers
    belongs to the owning span itself.  Segments come back in
    increasing time order and tile ``[root.t0, root.end]`` exactly, so
    their durations sum to the root's duration (open spans clamped to
    the trace end).
    """
    segments: list[Segment] = []

    def walk(node: SpanNode, lo: float, hi: float) -> None:
        t = hi
        # Latest-finishing child first: that child is the blocker at its
        # end instant.  span_id breaks exact ties deterministically.
        for child in sorted(
            node.children,
            key=lambda c: (c.end_or(dag.end_time), c.t0, c.span_id),
            reverse=True,
        ):
            if t <= lo:
                break
            if child.t0 >= t:
                continue
            child_end = min(child.end_or(dag.end_time), t)
            if child_end <= lo:
                break
            if child_end < t:
                segments.append(Segment(child_end, t, node))
            child_lo = max(child.t0, lo)
            walk(child, child_lo, child_end)
            t = child_lo
        if t > lo:
            segments.append(Segment(lo, t, node))

    walk(root, root.t0, root.end_or(dag.end_time))
    segments.sort(key=lambda s: (s.t0, s.t1, s.node.span_id))
    return segments


def classify(node: SpanNode) -> str:
    """Map a span to the resource its critical-path time was spent on."""
    kind = node.kind
    if kind == "http-queue":
        return f"frontend-queue/{node.attrs.get('server', node.name)}"
    if kind == "flow":
        return f"link/{node.attrs.get('bottleneck', 'unknown')}"
    if kind in ("retry-wait", "exec-retry"):
        return "retry-backoff"
    if kind == "dead-wait":
        return "dead-wait"
    if kind == "http":
        return f"http-service/{node.attrs.get('server', node.name)}"
    if kind == "install-phase":
        return f"phase/{node.name}"
    if kind in ("campaign-node", "shoot", "boot"):
        return "node-boot"
    if kind == "fault":
        return f"fault/{node.name}"
    return f"self/{kind}"


def attribute(segments: Iterable[Segment]) -> list[tuple[str, float]]:
    """Total critical-path seconds per resource, largest first."""
    totals: dict[str, float] = {}
    for seg in segments:
        totals[seg.resource] = totals.get(seg.resource, 0.0) + seg.duration
    return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))


#: span kind -> blocked-time category for the percentile table.
_BLOCKED_CATEGORY = {
    "http-queue": "queue",
    "flow": "link",
    "retry-wait": "retry",
    "exec-retry": "retry",
    "dead-wait": "dead-wait",
}

_BLOCKED_ORDER = ("queue", "link", "retry", "dead-wait")


def blocked_stats(dag: TraceDAG) -> dict[str, dict]:
    """p50/p95 blocked time per category over *all* spans in the DAG."""
    by_cat: dict[str, list[float]] = {}
    for node in dag.nodes.values():
        cat = _BLOCKED_CATEGORY.get(node.kind)
        if cat is None:
            continue
        by_cat.setdefault(cat, []).append(node.end_or(dag.end_time) - node.t0)
    stats = {}
    for cat in _BLOCKED_ORDER:
        durations = by_cat.get(cat)
        if not durations:
            continue
        stats[cat] = {
            "count": len(durations),
            "p50": percentile(durations, 0.50),
            "p95": percentile(durations, 0.95),
            "total": sum(durations),
        }
    return stats


def pick_root(dag: TraceDAG,
              prefer: tuple = ROOT_KINDS) -> Optional[SpanNode]:
    """The most interesting root: preferred kind first, then longest."""
    if not dag.roots:
        return None
    for kind in prefer:
        candidates = [r for r in dag.roots if r.kind == kind]
        if candidates:
            return max(
                candidates,
                key=lambda n: (n.end_or(dag.end_time) - n.t0, -n.span_id),
            )
    return max(
        dag.roots, key=lambda n: (n.end_or(dag.end_time) - n.t0, -n.span_id)
    )


def render_report(dag: TraceDAG, root: SpanNode,
                  top: Optional[int] = None) -> str:
    """The byte-identical attribution report for one root span."""
    segments = critical_path(dag, root)
    total = root.end_or(dag.end_time) - root.t0
    open_note = " (left open, clamped to trace end)" if root.is_open else ""
    lines = [
        f"critical path: {root.kind} \"{root.name}\" — "
        f"{total:.1f} s wall-to-wall{open_note}",
        f"  {'seconds':>10}  {'share':>6}  resource",
    ]
    attributed = attribute(segments)
    shown = attributed if top is None else attributed[:top]
    for resource, seconds in shown:
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"  {seconds:>10.1f}  {share:>5.1f}%  {resource}")
    if top is not None and len(attributed) > top:
        rest = sum(seconds for _, seconds in attributed[top:])
        lines.append(
            f"  {rest:>10.1f}  "
            f"{100.0 * rest / total if total > 0 else 0.0:>5.1f}%  "
            f"({len(attributed) - top} more)"
        )
    named = sum(s for r, s in attributed if r not in _ROOT_SELF)
    named_pct = 100.0 * named / total if total > 0 else 0.0
    lines.append(
        f"attributed to named resources: {named_pct:.1f}% "
        f"({total - named:.1f} s root self-time)"
    )
    stats = blocked_stats(dag)
    if stats:
        lines.append("blocked-time percentiles (all spans, seconds):")
        lines.append(f"  {'category':<10} {'count':>7} {'p50':>9} {'p95':>9} "
                     f"{'total':>11}")
        for cat, s in stats.items():
            lines.append(
                f"  {cat:<10} {s['count']:>7} {s['p50']:>9.2f} "
                f"{s['p95']:>9.2f} {s['total']:>11.1f}"
            )
    if dag.open_spans:
        lines.append(f"open spans clamped to t={dag.end_time:.1f}s: "
                     f"{len(dag.open_spans)}")
    if dag.orphans:
        lines.append(f"orphan spans promoted to roots: {len(dag.orphans)}")
    return "\n".join(lines)


def explain_tracer(tracer: Tracer, top: Optional[int] = None) -> str:
    """Convenience: DAG + root pick + report straight from a tracer."""
    dag = dag_from_tracer(tracer)
    root = pick_root(dag)
    if root is None:
        return "no spans recorded — nothing to explain"
    return render_report(dag, root, top=top)
