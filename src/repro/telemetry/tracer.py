"""Structured tracing for the simulation: typed spans and events.

Every record is stamped with *simulated* time (``env.now``) and a
monotonically increasing sequence number — never a wall clock — so two
runs of the same seeded scenario produce byte-identical traces.  The
default tracer on every :class:`~repro.netsim.Environment` is the
module-level :data:`NULL_TRACER`, whose methods are no-ops: code is
instrumented unconditionally but pays nothing until a real
:class:`Tracer` is attached (``Tracer().attach(env)``).

Record taxonomy (the ``kind`` field; see :mod:`repro.telemetry.schema`):

* ``install`` / ``install-phase`` — one span per node installation and
  per anaconda phase (dhcp, kickstart, partition, packages, post, myrinet);
* ``http`` — one span per GET, with status and payload size;
* ``http-queue`` — time a GET spent waiting in a server's bounded
  accept queue before admission (child of the ``http`` span);
* ``flow`` — one span per fluid-flow transfer (done/cancelled), with a
  ``bottleneck`` attr naming the narrowest link on its path;
* ``service`` — lifecycle events (start/stop/restart/fail/repair);
* ``fault`` — every action a :class:`~repro.faults.FaultInjector` takes
  (an event per action, plus one span per delivered fault window);
* ``campaign`` / ``campaign-node`` — reinstall-campaign supervision,
  with per-attempt and escalation events;
* ``reinstall`` — the root span of a plain (non-campaign) mass reinstall;
* ``download-retry`` / ``download-failed`` — installer fetch retries;
* ``retry-wait`` — installer backoff sleep between fetch attempts;
* ``dead-wait`` — time a reinstall supervisor spent waiting on a node
  that never came back before its deadline expired;
* ``shoot`` — one span per shoot-node invocation, wall-to-wall: reboot
  (or PDU cycle) through installation and back UP; the per-node unit a
  critical path attributes as node-boot time;
* ``boot`` — one span per *caused* machine boot attempt (POST through
  multi-user UP), parented on whatever triggered it — a shoot, a
  storm's power restore; uncaused boots (manual power_on) stay
  unspanned;
* ``exec`` / ``exec-node`` / ``exec-retry`` — the parallel-exec fabric:
  one root span per fanout, one child span per target node, one span
  per backoff between command retries (plus ``exec-straggler`` events);
* ``storm`` — the root span of a power-restore install storm;
* ``autoscale`` — replica-autoscaler scale-up/down actions;
* ``supervisor-restart`` / ``supervisor-degraded`` — service-supervisor
  actions (plus ``supervisor.probes``/``supervisor.restarts`` counters);
* ``http-reject`` — a request shed by admission control (503 with
  Retry-After; queue depth is the ``http.queue_depth/<host>`` gauge);
* ``breaker`` — circuit-breaker state transitions (closed/open/half-open);
* ``frontend-crash`` / ``journal-replay`` — a frontend crash and the
  database-journal replay span that recovers from it;
* ``alert`` / ``alert-clear`` — typed alerts the monitoring
  :class:`~repro.monitoring.AlertEngine` raises and clears (node-down,
  install-stuck, http-shed, link-saturated, service-down), with
  ``alerts.fired/<kind>`` counters alongside.

Trace context: every span carries ``span_id`` (its own sequence number
— deterministic, never random), ``parent_id`` (the span it was caused
by, or ``None`` for a root), and ``trace_id`` (the ``span_id`` of its
root).  Causality is threaded two ways: explicitly, via the ``parent=``
keyword on :meth:`Tracer.span` / :meth:`Tracer.record_span` /
:meth:`Tracer.event`; or ambiently, via ``with tracer.context(span):``
for *synchronous* regions only — ambient context must never be held
across a simulation ``yield``, or concurrent processes would adopt each
other's parents.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from .metrics import Metrics, NullMetrics

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """An interval of simulated time: opened now, closed by :meth:`end`.

    ``attrs`` carries arbitrary JSON-serialisable context (host, path,
    outcome).  A span left open at export time serialises with
    ``t1: null`` — useful for spotting work the simulation abandoned.

    ``span_id`` equals ``seq`` (deterministic); ``parent_id`` names the
    causing span, ``trace_id`` the root of the causality tree.
    """

    __slots__ = ("seq", "kind", "name", "t0", "t1", "attrs", "_tracer",
                 "parent_id", "trace_id")

    def __init__(self, tracer: "Tracer", seq: int, kind: str, name: str,
                 t0: float, attrs: dict, parent: Optional["Span"] = None):
        self._tracer = tracer
        self.seq = seq
        self.kind = kind
        self.name = name
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs
        if parent is not None:
            self.parent_id: Optional[int] = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.parent_id = None
            self.trace_id = seq

    @property
    def span_id(self) -> int:
        return self.seq

    @property
    def duration(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time."""
        if self.t1 is None:
            self.t1 = self._tracer.now
            if attrs:
                self.attrs.update(attrs)

    # Context-manager form: `with tracer.span(...) as span:` guarantees
    # the span closes — the shape the RK204 determinism lint asks for.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(outcome="error" if exc_type is not None else
                 self.attrs.get("outcome", "ok"))

    def to_record(self) -> dict:
        return {
            "type": "span",
            "seq": self.seq,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "kind": self.kind,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "open" if self.t1 is None else f"{self.t1:.2f}"
        return f"Span({self.kind}/{self.name}, {self.t0:.2f}..{end})"


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    span_id = None
    parent_id = None
    trace_id = None

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, events, and metrics from an attached environment."""

    enabled = True

    def __init__(self):
        self.env = None
        self.metrics = Metrics()
        self._seq = itertools.count()
        self._records: list = []  # Span objects and event dicts, seq order
        self._ctx: list = []  # ambient parent stack (synchronous regions only)

    # -- wiring ------------------------------------------------------------
    def attach(self, env) -> "Tracer":
        """Make this the environment's tracer (``env.tracer = self``)."""
        self.env = env
        self.metrics.attach(env)
        env.tracer = self
        return self

    @property
    def now(self) -> float:
        return 0.0 if self.env is None else self.env.now

    # -- trace context -----------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The ambient parent span, if a ``context()`` block is active."""
        return self._ctx[-1] if self._ctx else None

    def context(self, span: Optional[Span]):
        """Make ``span`` the ambient parent for the enclosed region.

        Synchronous regions only: never hold a context across a
        simulation ``yield`` — interleaved processes would parent their
        spans on whichever context happened to be on top of the stack.
        """
        return _TraceContext(self, span)

    def _resolve_parent(self, parent: Optional[Span]) -> Optional[Span]:
        if isinstance(parent, Span):
            return parent
        # Fall back to the ambient context (None when no block is active;
        # NULL_SPAN placeholders from a disabled tracer also land here).
        ambient = self._ctx[-1] if self._ctx else None
        return ambient if isinstance(ambient, Span) else None

    # -- recording ---------------------------------------------------------
    def event(self, kind: str, name: str,
              parent: Optional[Span] = None, **attrs: Any) -> None:
        """Record an instantaneous occurrence at the current time."""
        record = {
            "type": "event",
            "seq": next(self._seq),
            "kind": kind,
            "name": name,
            "t": self.now,
            "attrs": attrs,
        }
        parent = self._resolve_parent(parent)
        if parent is not None:
            record["parent_id"] = parent.span_id
            record["trace_id"] = parent.trace_id
        self._records.append(record)

    def span(self, kind: str, name: str,
             parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span at the current time; close it with ``span.end()``."""
        span = Span(self, next(self._seq), kind, name, self.now, attrs,
                    parent=self._resolve_parent(parent))
        self._records.append(span)
        return span

    def record_span(self, kind: str, name: str, t0: float,
                    parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Record a span that began at ``t0`` and ends now (retrospective)."""
        span = Span(self, next(self._seq), kind, name, t0, attrs,
                    parent=self._resolve_parent(parent))
        span.t1 = self.now
        self._records.append(span)
        return span

    # -- reading -----------------------------------------------------------
    def iter_records(self) -> Iterator[dict]:
        """All span/event records as plain dicts, in creation order."""
        for rec in self._records:
            yield rec.to_record() if isinstance(rec, Span) else rec

    @property
    def n_records(self) -> int:
        return len(self._records)

    def spans(self, kind: Optional[str] = None) -> list[Span]:
        return [r for r in self._records
                if isinstance(r, Span) and (kind is None or r.kind == kind)]

    def events(self, kind: Optional[str] = None) -> list[dict]:
        return [r for r in self._records
                if isinstance(r, dict) and (kind is None or r["kind"] == kind)]


class _TraceContext:
    """Context manager pushing a span onto the ambient parent stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Optional[Span]):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Optional[Span]:
        self._tracer._ctx.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._ctx.pop()


class _NullContext:
    """Do-nothing stand-in for :class:`_TraceContext` on the null tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    ``enabled`` is False so hot paths (flow reallocation, per-request
    accounting) can skip even the cost of building attribute dicts.
    """

    enabled = False

    def __init__(self):
        self.metrics = NullMetrics()

    def attach(self, env) -> "NullTracer":
        env.tracer = self
        return self

    @property
    def now(self) -> float:
        return 0.0

    @property
    def current(self) -> None:
        return None

    def context(self, span: Any = None) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, kind: str, name: str, parent: Any = None,
              **attrs: Any) -> None:
        pass

    def span(self, kind: str, name: str, parent: Any = None,
             **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record_span(self, kind: str, name: str, t0: float, parent: Any = None,
                    **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def iter_records(self) -> Iterator[dict]:
        return iter(())

    @property
    def n_records(self) -> int:
        return 0

    def spans(self, kind: Optional[str] = None) -> list:
        return []

    def events(self, kind: Optional[str] = None) -> list:
        return []


#: Shared no-op tracer; the default on every Environment.
NULL_TRACER = NullTracer()
