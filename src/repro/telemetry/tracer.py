"""Structured tracing for the simulation: typed spans and events.

Every record is stamped with *simulated* time (``env.now``) and a
monotonically increasing sequence number — never a wall clock — so two
runs of the same seeded scenario produce byte-identical traces.  The
default tracer on every :class:`~repro.netsim.Environment` is the
module-level :data:`NULL_TRACER`, whose methods are no-ops: code is
instrumented unconditionally but pays nothing until a real
:class:`Tracer` is attached (``Tracer().attach(env)``).

Record taxonomy (the ``kind`` field; see :mod:`repro.telemetry.schema`):

* ``install`` / ``install-phase`` — one span per node installation and
  per anaconda phase (dhcp, kickstart, partition, packages, post, myrinet);
* ``http`` — one span per GET, with status and payload size;
* ``flow`` — one span per fluid-flow transfer (done/cancelled);
* ``service`` — lifecycle events (start/stop/restart/fail/repair);
* ``fault`` — every action a :class:`~repro.faults.FaultInjector` takes;
* ``campaign`` / ``campaign-node`` — reinstall-campaign supervision,
  with per-attempt and escalation events;
* ``download-retry`` / ``download-failed`` — installer fetch retries;
* ``supervisor-restart`` / ``supervisor-degraded`` — service-supervisor
  actions (plus ``supervisor.probes``/``supervisor.restarts`` counters);
* ``http-reject`` — a request shed by admission control (503 with
  Retry-After; queue depth is the ``http.queue_depth/<host>`` gauge);
* ``breaker`` — circuit-breaker state transitions (closed/open/half-open);
* ``frontend-crash`` / ``journal-replay`` — a frontend crash and the
  database-journal replay span that recovers from it;
* ``alert`` / ``alert-clear`` — typed alerts the monitoring
  :class:`~repro.monitoring.AlertEngine` raises and clears (node-down,
  install-stuck, http-shed, link-saturated, service-down), with
  ``alerts.fired/<kind>`` counters alongside.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from .metrics import Metrics, NullMetrics

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """An interval of simulated time: opened now, closed by :meth:`end`.

    ``attrs`` carries arbitrary JSON-serialisable context (host, path,
    outcome).  A span left open at export time serialises with
    ``t1: null`` — useful for spotting work the simulation abandoned.
    """

    __slots__ = ("seq", "kind", "name", "t0", "t1", "attrs", "_tracer")

    def __init__(self, tracer: "Tracer", seq: int, kind: str, name: str,
                 t0: float, attrs: dict):
        self._tracer = tracer
        self.seq = seq
        self.kind = kind
        self.name = name
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time."""
        if self.t1 is None:
            self.t1 = self._tracer.now
            if attrs:
                self.attrs.update(attrs)

    # Context-manager form: `with tracer.span(...) as span:` guarantees
    # the span closes — the shape the RK204 determinism lint asks for.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(outcome="error" if exc_type is not None else
                 self.attrs.get("outcome", "ok"))

    def to_record(self) -> dict:
        return {
            "type": "span",
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "open" if self.t1 is None else f"{self.t1:.2f}"
        return f"Span({self.kind}/{self.name}, {self.t0:.2f}..{end})"


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, events, and metrics from an attached environment."""

    enabled = True

    def __init__(self):
        self.env = None
        self.metrics = Metrics()
        self._seq = itertools.count()
        self._records: list = []  # Span objects and event dicts, seq order

    # -- wiring ------------------------------------------------------------
    def attach(self, env) -> "Tracer":
        """Make this the environment's tracer (``env.tracer = self``)."""
        self.env = env
        self.metrics.attach(env)
        env.tracer = self
        return self

    @property
    def now(self) -> float:
        return 0.0 if self.env is None else self.env.now

    # -- recording ---------------------------------------------------------
    def event(self, kind: str, name: str, **attrs: Any) -> None:
        """Record an instantaneous occurrence at the current time."""
        self._records.append({
            "type": "event",
            "seq": next(self._seq),
            "kind": kind,
            "name": name,
            "t": self.now,
            "attrs": attrs,
        })

    def span(self, kind: str, name: str, **attrs: Any) -> Span:
        """Open a span at the current time; close it with ``span.end()``."""
        span = Span(self, next(self._seq), kind, name, self.now, attrs)
        self._records.append(span)
        return span

    def record_span(self, kind: str, name: str, t0: float, **attrs: Any) -> Span:
        """Record a span that began at ``t0`` and ends now (retrospective)."""
        span = Span(self, next(self._seq), kind, name, t0, attrs)
        span.t1 = self.now
        self._records.append(span)
        return span

    # -- reading -----------------------------------------------------------
    def iter_records(self) -> Iterator[dict]:
        """All span/event records as plain dicts, in creation order."""
        for rec in self._records:
            yield rec.to_record() if isinstance(rec, Span) else rec

    @property
    def n_records(self) -> int:
        return len(self._records)

    def spans(self, kind: Optional[str] = None) -> list[Span]:
        return [r for r in self._records
                if isinstance(r, Span) and (kind is None or r.kind == kind)]

    def events(self, kind: Optional[str] = None) -> list[dict]:
        return [r for r in self._records
                if isinstance(r, dict) and (kind is None or r["kind"] == kind)]


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    ``enabled`` is False so hot paths (flow reallocation, per-request
    accounting) can skip even the cost of building attribute dicts.
    """

    enabled = False

    def __init__(self):
        self.metrics = NullMetrics()

    def attach(self, env) -> "NullTracer":
        env.tracer = self
        return self

    @property
    def now(self) -> float:
        return 0.0

    def event(self, kind: str, name: str, **attrs: Any) -> None:
        pass

    def span(self, kind: str, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record_span(self, kind: str, name: str, t0: float, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def iter_records(self) -> Iterator[dict]:
        return iter(())

    @property
    def n_records(self) -> int:
        return 0

    def spans(self, kind: Optional[str] = None) -> list:
        return []

    def events(self, kind: Optional[str] = None) -> list:
        return []


#: Shared no-op tracer; the default on every Environment.
NULL_TRACER = NullTracer()
