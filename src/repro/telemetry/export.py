"""Deterministic JSON/JSONL export of a trace.

Records serialise with sorted keys and minimal separators, so the same
seeded run always produces the same bytes — the property the tracer
determinism tests pin down.
"""

from __future__ import annotations

import json
from typing import Iterator

from .schema import TRACE_FORMAT, TRACE_VERSION
from .tracer import Tracer

__all__ = ["iter_trace_records", "to_jsonl", "write_jsonl", "to_dict"]


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def iter_trace_records(tracer: Tracer) -> Iterator[dict]:
    """Header, then spans/events in seq order, then counters and gauges."""
    yield {
        "type": "meta",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "clock": "simulated-seconds",
        "n_records": tracer.n_records,
        "end_time": tracer.now,
    }
    yield from tracer.iter_records()
    metrics = tracer.metrics
    for name in sorted(metrics.counters):
        yield {"type": "counter", "name": name, "value": metrics.counters[name]}
    for name in metrics.gauge_names():
        yield {
            "type": "gauge",
            "name": name,
            "samples": [[t, v] for t, v in metrics.samples(name)],
        }


def to_jsonl(tracer: Tracer) -> str:
    """The full trace as JSON Lines text (one record per line)."""
    return "\n".join(_dumps(rec) for rec in iter_trace_records(tracer)) + "\n"


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of records."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in iter_trace_records(tracer):
            fh.write(_dumps(rec) + "\n")
            n += 1
    return n


def to_dict(tracer: Tracer) -> dict:
    """The trace as one JSON-ready object (records + metrics)."""
    records = list(iter_trace_records(tracer))
    return {
        "meta": records[0],
        "records": [r for r in records[1:] if r["type"] in ("span", "event")],
        "counters": {r["name"]: r["value"] for r in records if r["type"] == "counter"},
        "gauges": {r["name"]: r["samples"] for r in records if r["type"] == "gauge"},
    }
