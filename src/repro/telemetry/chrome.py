"""Chrome-trace (``trace_event``) export: open a run in Perfetto.

Converts a trace into the Trace Event JSON format that ``chrome://
tracing`` and https://ui.perfetto.dev render: one track (thread) per
host or service, complete (``X``) events for closed spans, begin
(``B``) events for spans left open, instant (``i``) events, and
``s``/``f`` flow arrows wherever causality crosses tracks — a campaign
on the frontend fanning out to per-node installs, an exec task fanning
out to its targets.

Simulated seconds map to microseconds (the format's native unit), and
everything — track ids, event order, JSON key order — is derived from
deterministic record data, so the export is byte-identical for a fixed
seed.
"""

from __future__ import annotations

import json
from typing import Iterable

from .export import iter_trace_records
from .tracer import Tracer

__all__ = ["chrome_trace_events", "to_chrome_json", "write_chrome_json"]

#: attrs keys consulted (in order) to place a record on a host track.
_TRACK_KEYS = ("host", "server", "node", "client", "target")


def _track(record: dict) -> str:
    """The track (Perfetto thread) a span/event record renders on."""
    attrs = record.get("attrs", {})
    for key in _TRACK_KEYS:
        value = attrs.get(key)
        if isinstance(value, str):
            return value
    if record["kind"] == "service":
        return record["name"]
    if record["kind"] == "flow":
        return "network"
    return "control"


def _us(t: float) -> float:
    """Simulated seconds -> trace_event microseconds."""
    return round(t * 1e6, 3)


def chrome_trace_events(records: Iterable[dict]) -> list[dict]:
    """Trace Event objects for the span/event records in ``records``."""
    spans_and_events = [
        r for r in records if r.get("type") in ("span", "event")
    ]
    tracks = sorted({_track(r) for r in spans_and_events})
    tid = {name: i + 1 for i, name in enumerate(tracks)}
    span_track = {
        r["span_id"]: _track(r) for r in spans_and_events
        if r["type"] == "span"
    }

    events: list[dict] = [
        {
            "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
            "args": {"name": "repro cluster"},
        }
    ]
    for name in tracks:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid[name],
            "args": {"name": name},
        })

    for record in spans_and_events:
        track = _track(record)
        args = dict(record["attrs"])
        if record["type"] == "span":
            args["span_id"] = record["span_id"]
            if record["parent_id"] is not None:
                args["parent_id"] = record["parent_id"]
            args["trace_id"] = record["trace_id"]
            base = {
                "name": f"{record['kind']}:{record['name']}",
                "cat": record["kind"],
                "pid": 1,
                "tid": tid[track],
                "ts": _us(record["t0"]),
                "args": args,
            }
            if record["t1"] is None:
                events.append({**base, "ph": "B"})
            else:
                events.append({
                    **base, "ph": "X",
                    "dur": _us(record["t1"]) - _us(record["t0"]),
                })
            # Cross-track causality renders as a flow arrow from the
            # parent's track to the child's start.
            parent_track = span_track.get(record["parent_id"])
            if parent_track is not None and parent_track != track:
                flow = {
                    "name": "causality",
                    "cat": record["kind"],
                    "id": record["span_id"],
                    "pid": 1,
                    "ts": _us(record["t0"]),
                }
                events.append({**flow, "ph": "s", "tid": tid[parent_track]})
                events.append({**flow, "ph": "f", "bp": "e",
                               "tid": tid[track]})
        else:
            if "parent_id" in record:
                args["parent_id"] = record["parent_id"]
                args["trace_id"] = record["trace_id"]
            events.append({
                "ph": "i",
                "s": "t",
                "name": f"{record['kind']}:{record['name']}",
                "cat": record["kind"],
                "pid": 1,
                "tid": tid[track],
                "ts": _us(record["t"]),
                "args": args,
            })
    return events


def to_chrome_json(tracer: Tracer) -> str:
    """The whole trace as a Trace Event JSON document (deterministic)."""
    payload = {
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds-as-us"},
        "traceEvents": chrome_trace_events(iter_trace_records(tracer)),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_json(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    text = to_chrome_json(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count('"ph"')
