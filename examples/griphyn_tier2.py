#!/usr/bin/env python3
"""A GriPhyN Tier-2 prototype on Rocks (§7, Current Status & Future Work).

The paper closes with an announced deployment: Paul Avery's GriPhyN
project chose Rocks for a prototype Tier-2 server feeding LHC physics.
This example stands up a larger, multi-cabinet cluster with dedicated
NFS appliances (bulk storage for event data), monitors it, and accounts
for its peak compute — the same way the authors tallied "over 2 TFLOPS
(peak) of clustered computing" across the Rocks install base.

Run:  python examples/griphyn_tier2.py
"""

from repro import build_cluster
from repro.core.tools import InsertEthers, queue_cluster_reinstall
from repro.services import enable_monitoring

#: peak double-precision flops per cycle for a PIII-class core
FLOPS_PER_CYCLE = 1.0

NODES_PER_CABINET = 16
CABINETS = 2


def peak_gflops(machine) -> float:
    cpu = machine.spec.cpu
    return cpu.mhz * 1e6 * cpu.count * FLOPS_PER_CYCLE / 1e9


def main() -> None:
    print("== Tier-2 prototype: 2 cabinets of compute + storage appliances ==")
    sim = build_cluster(n_compute=0)
    f = sim.frontend

    # cabinet 0 and 1: compute nodes, integrated per-cabinet so the
    # (rack, rank) naming matches physical position (§6.4 footnote)
    for cab_no in range(CABINETS):
        cab = sim.hardware.cabinets[0] if cab_no == 0 else sim.hardware.add_cabinet()
        machines = [
            sim.hardware.add_machine("pIII-1000-myri", cabinet=cab)
            for _ in range(NODES_PER_CABINET)
        ]
        for m in machines:
            f.adopt(m)
        sim.nodes.extend(machines)
        ie = InsertEthers(f, cabinet=cab_no).start()
        for m in machines:
            m.power_on()
            while not f.db.has_mac(m.mac):
                sim.env.step()
        ie.stop()
    # storage appliances for event data
    storage = []
    for i in range(2):
        m = sim.hardware.add_machine("nfs-server")
        f.adopt(m)
        with InsertEthers(f, membership="NFS Servers") as ie:
            ie.insert(m.mac)
        m.power_on()
        storage.append(m)
    for m in sim.nodes + storage:
        sim.env.run(until=m.wait_for_state(m.state.UP))
    print(f"  integrated {len(sim.nodes)} compute nodes in "
          f"{CABINETS} cabinets + {len(storage)} NFS appliances "
          f"in {sim.env.now / 60:.0f} simulated minutes")

    rows = sim.db.query(
        "select memberships.name, count(*) from nodes, memberships "
        "where nodes.membership = memberships.id group by memberships.name"
    )
    for membership, count in rows:
        print(f"    {membership:<18} {count}")

    print("\n== peak compute accounting (the paper's 2 TFLOPS tally) ==")
    gflops = sum(peak_gflops(m) for m in sim.nodes)
    print(f"  {len(sim.nodes)} x {sim.nodes[0].spec.model}: "
          f"{gflops:.1f} GFLOPS peak for this Tier-2 prototype")
    print(f"  ({2000 / gflops:.0f} such clusters ≈ the 2 TFLOPS install base)")

    print("\n== monitoring the production floor ==")
    monitor = enable_monitoring(sim.env, sim.nodes + storage + [f.machine])
    sim.env.run(until=sim.env.now + 60)
    up = monitor.up_hosts()
    print(f"  {len(up)} hosts heartbeating; 0 stale")

    print("\n== nightly security refresh via the queue (unattended) ==")
    f.maui.start()
    from repro.rpm import UpdateStream

    stream = UpdateStream(f.rocks_dist.sources[0], updates_per_year=124)
    f.add_update_source(stream.updates_repository(90))
    f.rebuild_distribution()
    f.generator.invalidate()
    campaign = queue_cluster_reinstall(f)
    sim.env.run(until=campaign.wait_event(sim.env))
    span = (max(j.finished_at for j in campaign.jobs)
            - min(j.submitted_at for j in campaign.jobs)) / 60
    print(f"  {len(campaign.jobs)} nodes refreshed in {span:.0f} simulated "
          f"minutes; fleet consistent: "
          f"{all(not sim.nodes[0].rpmdb.diff(n.rpmdb) for n in sim.nodes[1:])}")


if __name__ == "__main__":
    main()
