#!/usr/bin/env python3
"""A Meteor-like heterogeneous cluster from ONE XML graph (§3.1, §6.1).

The paper's SDSC Meteor cluster drifted from homogeneous to seven node
types across three CPU architectures and three disk-adapter types; the
Rocks answer is that "heterogeneous hardware is no harder to support
than homogeneous" because a single XML graph file drives the dynamic
kickstart generation for every variant.

This example builds that mix, integrates it through insert-ethers, and
shows how the same graph yields per-variant kickstarts: different driver
modules, arch-specific packages (intel-mkl only on x86), and the
Myrinet source rebuild only where the hardware needs it.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import build_cluster
from repro.cluster import MachineState
from repro.rpm import Repository, community_packages, stock_redhat

#: (catalog model, how many) — a Meteor-like mix
MIX = [
    ("pIII-733-myri", 2),   # IA-32, IDE, Myrinet
    ("pIII-1000-myri", 2),  # faster IA-32, IDE, Myrinet
    ("pIII-733-dual", 1),   # IA-32, SCSI, Ethernet-only
    ("athlon-1200", 2),     # Athlon, IDE, Ethernet-only
    ("ia64-800-raid", 1),   # IA-64, integrated RAID
]


def multiarch_stock() -> Repository:
    repo = Repository("redhat-multiarch")
    for arch in ("i386", "athlon", "ia64"):
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    return repo


def main() -> None:
    sim = build_cluster(n_compute=0, stock=multiarch_stock())
    for model, count in MIX:
        sim.add_compute_nodes(count, model=model)
    print(f"racked {len(sim.nodes)} machines of {len(MIX)} hardware types")

    print("\n== insert-ethers integrates the whole mix ==")
    sim.integrate_all()
    print(f"{'name':<14} {'model':<16} {'arch':<7} {'disk drv':<9} "
          f"{'pkgs':>5} {'myrinet'}")
    for node in sim.nodes:
        report = node.last_install_report
        print(f"{node.hostid:<14} {node.spec.model:<16} "
              f"{node.spec.cpu.arch.value:<7} "
              f"{node.spec.disk.controller.driver_module:<9} "
              f"{len(node.rpmdb):>5} {report.myrinet_rebuilt}")

    print("\n== one graph, divergent kickstarts ==")
    gen = sim.frontend.generator
    for arch in ("i386", "athlon", "ia64"):
        ks = gen.kickstart("compute", arch, "rocks-dist")
        mkl = "intel-mkl" in ks.packages
        print(f"  arch={arch:<7} packages={len(ks.packages):>3}  intel-mkl={mkl}")

    print("\n== the database records the heterogeneity ==")
    for row in sim.db.compute_nodes():
        print(f"  {row.name:<14} arch={row.arch:<7} cpus={row.cpus} ip={row.ip}")

    slow = min(sim.nodes, key=lambda n: n.spec.cpu.mhz)
    fast = max(sim.nodes, key=lambda n: n.spec.cpu.mhz)
    print(f"\nfastest node ({fast.spec.model}) installed in "
          f"{fast.last_install_report.total_seconds / 60:.1f} min; "
          f"slowest ({slow.spec.model}) in "
          f"{slow.last_install_report.total_seconds / 60:.1f} min")


if __name__ == "__main__":
    main()
