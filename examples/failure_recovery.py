#!/usr/bin/env python3
"""Failure handling the Rocks way (§4): eKV, PDU, crash cart, NFS.

Walks the paper's escalation ladder:

* a wedged node is power-cycled remotely on its PDU outlet — and a hard
  power cycle *forces a reinstall*, so the node returns consistent;
* during POST the administrator is "in the dark" (eKV needs Ethernet);
  the crash cart covers that window;
* the one unscalable service, NFS, fails common-mode: every client
  stalls at once; the fix is repair-the-service then remote power cycle.

Run:  python examples/failure_recovery.py
"""

from repro import build_cluster
from repro.cluster import MachineState
from repro.core.tools import CrashCart, EkvConsole, EkvUnreachable, shoot_node


def main() -> None:
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    f = sim.frontend
    env = sim.env

    print("== scenario 1: node wedged, unreachable over Ethernet ==")
    victim = sim.nodes[0]
    victim.power_off()  # simulate a hang: dark on the network
    print(f"  {victim.hostid} does not respond; shoot-node escalates to the PDU")
    report = env.run(until=shoot_node(f, victim))
    pdu, outlet = sim.hardware.pdu_for(victim)
    print(f"  hard power cycle on {pdu.name} outlet {outlet} -> forced reinstall")
    print(f"  method={report.method}, back up in {report.minutes:.1f} min, "
          f"install_count={victim.install_count} (consistent by construction)")

    print("\n== scenario 2: the dark window and the crash cart ==")
    node = sim.nodes[1]
    node.power_off()
    node.power_on()
    ekv = EkvConsole(sim.hardware, node)
    try:
        ekv.read()
    except EkvUnreachable as err:
        print(f"  during POST, eKV fails: {err}")
    cart = CrashCart(env)
    console = env.run(until=cart.attach(node))
    print(f"  crash cart attached after {CrashCart.WHEEL_TIME:.0f}s of wheeling; "
          f"console has {len(console)} lines")
    env.run(until=node.wait_for_state(MachineState.UP))
    print(f"  once Linux brings up eth0, eKV works again: reachable={ekv.reachable}")

    print("\n== scenario 3: common-mode NFS failure (§4: 'often NFS') ==")
    f.add_user("bruno", 500)
    mounts = [
        f.nfs.mount(n.hostid, "/export/home", "/home") for n in sim.nodes
    ]
    mounts[0].write("results.dat", b"E_total = -76.0267")
    f.nfs.fail()
    affected = f.nfs.affected_by_failure()
    print(f"  nfsd on the frontend dies; {len(affected)} clients stall at once: "
          f"{', '.join(affected)}")
    stalled = 0
    for m in mounts:
        try:
            m.read("results.dat")
        except Exception:
            stalled += 1
    print(f"  {stalled}/{len(mounts)} reads hang with stale file handles")
    print("  the §4 recipe: fix the service, then power cycle nodes remotely")
    f.nfs.repair()
    reports = sim.reinstall_all()
    print(f"  repaired + reinstalled all nodes "
          f"(max {max(r.minutes for r in reports):.1f} min); "
          f"data survived: {mounts[0].read('results.dat').decode()!r}")


if __name__ == "__main__":
    main()
