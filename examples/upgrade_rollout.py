#!/usr/bin/env python3
"""Production upgrade without disturbing running jobs (§5, §6.2.1).

A year of vendor updates streams in (one every ~3 days, as the paper
measured for Red Hat 6.2).  The administrator:

1. mirrors the updates and re-runs rocks-dist (newest versions win);
2. validates on a test node;
3. submits the 'reinstall cluster' campaign through Maui — running
   applications finish untouched, each node reinstalls as it frees, and
   the next job lands on a consistent, patched software base.

Run:  python examples/upgrade_rollout.py
"""

from repro import build_cluster
from repro.core.tools import queue_cluster_reinstall, shoot_node
from repro.rpm import UpdateStream
from repro.scheduler import JobState


def main() -> None:
    sim = build_cluster(n_compute=6)
    sim.integrate_all()
    f = sim.frontend
    f.maui.start()
    env = sim.env

    print("== day 0: production cluster, jobs running ==")
    app1 = f.pbs.qsub("bruno", "gamess-run", nodes=3, walltime=1800)
    app2 = f.pbs.qsub("amy", "amber-md", nodes=2, walltime=2400)
    f.maui.schedule_once()
    print(f"  {app1.name} on {app1.assigned_nodes}")
    print(f"  {app2.name} on {app2.assigned_nodes}")

    print("\n== 180 days of vendor updates accumulate ==")
    stream = UpdateStream(f.rocks_dist.sources[0], updates_per_year=124)
    released = stream.released_by(180)
    security = [u for u in released if u.security]
    print(f"  {len(released)} updates released "
          f"({len(security)} security advisories, e.g. {security[0].advisory} "
          f"for {security[0].package.name})")

    print("\n== rocks-dist picks up everything: 'If Red Hat ships it, so do we' ==")
    f.add_update_source(stream.updates_repository(180))
    new_dist = f.rebuild_distribution()
    f.generator.invalidate()
    print(f"  rebuilt {new_dist.name}: {len(new_dist.repository)} packages, "
          f"{f.rocks_dist.reports[-1].dropped_older} older builds dropped, "
          f"build {new_dist.build_seconds:.0f}s")

    print("\n== validate on one test node first (§5) ==")
    from repro.scheduler import NodeState

    free_name = f.pbs.nodes(NodeState.FREE)[0]  # a node no job is using
    test_node = sim.hardware.by_name(free_name)
    f.pbs.set_node_state(free_name, NodeState.OFFLINE)  # drain it for the test
    report = env.run(until=shoot_node(f, test_node))
    f.pbs.set_node_state(free_name, NodeState.FREE)
    applicable = [
        u for u in released if test_node.rpmdb.query(u.package.name) is not None
    ]
    patched = sum(
        1 for u in applicable
        if not u.package.newer_than(test_node.rpmdb.query(u.package.name))
    )
    print(f"  {test_node.hostid} reinstalled in {report.minutes:.1f} min; "
          f"{patched}/{len(applicable)} updates touching its package set "
          f"are present — validated")

    print("\n== queue the cluster-wide reinstall through Maui ==")
    campaign = queue_cluster_reinstall(f)
    next_job = f.pbs.qsub("carol", "nwchem", nodes=6, walltime=600)
    print(f"  {len(campaign.jobs)} per-node system jobs queued; "
          f"{next_job.name} queued behind the campaign")
    env.run(until=campaign.wait_event(env))
    env.run(until=next_job.done)

    print("\n== outcome ==")
    for app in (app1, app2):
        ran = app.finished_at - app.started_at
        print(f"  {app.name}: {app.state.name}, ran {ran:.0f}s of "
              f"{app.walltime:.0f}s walltime (undisturbed)")
    span = (max(j.finished_at for j in campaign.jobs)
            - min(j.submitted_at for j in campaign.jobs)) / 60
    print(f"  campaign completed in {span:.0f} min wall "
          f"({len(campaign.reports)} reinstalls)")
    print(f"  {next_job.name}: started at t+{next_job.started_at:.0f}s, "
          f"after the last reinstall finished "
          f"({next_job.started_at >= max(j.finished_at for j in campaign.jobs)})")

    ref = sim.nodes[0].rpmdb
    consistent = all(not ref.diff(n.rpmdb) for n in sim.nodes[1:])
    print(f"  fleet consistent after rollout: {consistent}")
    assert consistent and app1.state is JobState.COMPLETE


if __name__ == "__main__":
    main()
