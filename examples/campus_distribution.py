#!/usr/bin/env python3
"""Hierarchical distributions: NPACI -> campus -> department (Fig. 6).

§6.2.2: "We envision a hierarchy of Rocks distribution hosts, each
adding software packages for child distributions."  A campus mirrors the
NPACI distribution over HTTP, adds its licensed software once, and every
department builds clusters from the campus tree — inheriting both NPACI
and campus software, optionally overriding either.

Run:  python examples/campus_distribution.py
"""

from repro.core.distribution import RocksDist, mirror_over_http
from repro.core.kickstart import NodeFile, default_graph, default_node_files
from repro.netsim import Environment, FAST_ETHERNET, Network
from repro.rpm import (
    Package,
    Repository,
    community_packages,
    npaci_packages,
    stock_redhat,
)
from repro.services import InstallServer


def main() -> None:
    env = Environment()

    print("== NPACI builds the root distribution (Figure 5) ==")
    npaci_rd = RocksDist.standard(
        stock_redhat(),
        contrib=community_packages(),
        local=npaci_packages(),
        name="rocks-dist",
    )
    npaci_dist = npaci_rd.dist(env=env)
    print(f"  {npaci_dist.name}: {len(npaci_dist.repository)} packages, "
          f"tree {npaci_dist.tree_bytes() / 1e6:.1f} MB, "
          f"built in {npaci_dist.build_seconds:.0f}s (simulated)")

    print("\n== campus mirrors NPACI over HTTP (wget-style) ==")
    net = Network(env)
    net.attach("rocks.npaci.edu", FAST_ETHERNET)
    net.attach("rocks.campus.edu", FAST_ETHERNET)
    npaci_www = InstallServer(env, net, "rocks.npaci.edu")
    npaci_www.publish_packages(npaci_dist.name, npaci_dist.repository)
    campus_mirror = Repository("campus-mirror")
    report = env.run(
        until=env.process(
            mirror_over_http(
                env, npaci_www, "rocks-dist", "rocks.campus.edu", campus_mirror
            )
        )
    )
    print(f"  fetched {report.n_fetched} packages "
          f"({report.bytes_transferred / 1e6:.0f} MB) "
          f"in {report.seconds / 60:.1f} simulated minutes")

    print("\n== campus adds licensed software + a node file, rebuilds ==")
    campus_rd = RocksDist(name="campus-dist", parent=npaci_dist)
    campus_rd.add_source(
        Repository(
            "campus-local",
            [
                Package("campus-compiler", "6.0", size=40_000_000, vendor="campus"),
                Package("campus-license-client", "1.2", size=500_000, vendor="campus"),
            ],
        )
    )
    node_files = default_node_files()
    node_files["campus-licensed"] = NodeFile.from_xml(
        "campus-licensed",
        "<kickstart>"
        "<description>Campus licensed toolchain</description>"
        "<package>campus-compiler</package>"
        "<package>campus-license-client</package>"
        "<post seconds='1'>echo license.campus.edu &gt; /etc/license.conf</post>"
        "</kickstart>",
    )
    graph = default_graph()
    graph.add_edge("compute", "campus-licensed")
    campus_dist = campus_rd.dist(graph=graph, node_files=node_files, env=env)
    print(f"  {campus_dist.lineage()}: {len(campus_dist.repository)} packages")

    print("\n== chemistry department extends the campus tree ==")
    chem_rd = RocksDist(name="chem-dist", parent=campus_dist)
    chem_rd.add_source(
        Repository("chem-local", [Package("gaussian", "98", size=120_000_000)])
    )
    # the department also overrides a campus package with a newer build
    chem_rd.add_source(
        Repository(
            "chem-overrides",
            [Package("campus-compiler", "6.1", size=41_000_000, vendor="chem")],
        )
    )
    chem_dist = chem_rd.dist(graph=graph, node_files=node_files, env=env)
    print(f"  {chem_dist.lineage()}: {len(chem_dist.repository)} packages")

    print("\n== inheritance and override checks ==")
    for name in ("glibc", "mpich", "rocks-dist", "campus-compiler", "gaussian"):
        pkg = chem_dist.latest(name)
        print(f"  {name:<18} {pkg.version:<8} (vendor: {pkg.vendor})")
    assert chem_dist.latest("campus-compiler").version == "6.1"

    print("\nevery department cluster kickstarted from chem-dist now "
          "inherits NPACI + campus + department software — and a campus "
          "security rebuild propagates by re-running rocks-dist.")


if __name__ == "__main__":
    main()
