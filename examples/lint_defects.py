#!/usr/bin/env python3
"""Lint a deliberately broken site configuration before any node installs.

Two defects that the paper's CGI compiler would only surface at install
time (or never):

1. a graph cycle — a site edge from ``c-development`` back to
   ``compute`` turns the appliance subtree into a loop (RK103);
2. a shadowed site RPM — the site-local source ships ``gcc 2.95`` to
   override the stock compiler, but stock already carries the *newer*
   2.96, so rocks-dist silently drops the override and the site build
   never installs (RK108).

`repro lint` catches both statically, with the offending cycle path and
the shadowing build spelled out.

Run:  PYTHONPATH=src python examples/lint_defects.py
"""

from repro.analysis import ConfigContext, analyze_config, render_text
from repro.core.kickstart import default_graph, default_node_files
from repro.rpm import Package, Repository, community_packages, npaci_packages, stock_redhat


def main() -> None:
    print("== seeding two defects into the default site description ==")

    # Defect 1: a back edge creating the cycle compute -> c-development -> compute.
    graph = default_graph()
    graph.add_edge("c-development", "compute")
    print("  graph: added edge c-development -> compute (cycle)")

    # Defect 2: a site-local override that is OLDER than the stock build.
    site_local = Repository("site-local")
    site_local.add(Package("gcc", "2.95", size=7 << 20))
    print("  dist:  site-local ships gcc-2.95-1 (stock has gcc-2.96-1)")

    # The rocks-dist source stack, in precedence order (later wins ties).
    sources = [
        ("stock-redhat", stock_redhat()),
        ("community", community_packages("i386")),
        ("npaci", npaci_packages()),
        ("site-local", site_local),
    ]
    merged = Repository("rocks-dist")
    for _, src in sources:
        merged.add_all(src)

    ctx = ConfigContext(
        graph=graph,
        node_files=default_node_files(),
        dist_name="rocks-dist",
        dist_resolver=lambda d: merged,
        arches=("i386",),
        sources=sources,
    )

    print("\n== repro lint ==")
    diagnostics = analyze_config(ctx)
    print(render_text(diagnostics))

    codes = sorted({d.code for d in diagnostics})
    print(f"\ncaught before a single (simulated) node asked for a kickstart: "
          f"{', '.join(codes)}")


if __name__ == "__main__":
    main()
