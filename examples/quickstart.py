#!/usr/bin/env python3
"""Quickstart: build a Rocks cluster, integrate nodes, reinstall them.

This walks the workflow of the paper's §7 in simulation:

1. the frontend installs from CD (services, database, rocks-dist);
2. insert-ethers adopts compute nodes as they boot and DHCP;
3. the cluster is managed from then on by *reinstalling* (§5) —
   shoot-node over Ethernet, monitored through eKV.

Run:  python examples/quickstart.py
"""

from repro import build_cluster
from repro.core.tools import EkvConsole, shoot_node


def main() -> None:
    print("== 1. Frontend bring-up (CD install) ==")
    sim = build_cluster(n_compute=4)
    f = sim.frontend
    print(f"frontend {f.config.name} is {f.machine.state.value}; "
          f"{len(f.machine.rpmdb)} packages installed")
    dist = f.distributions[f.config.dist_name]
    print(f"distribution {dist.name!r}: {len(dist.repository)} packages, "
          f"tree {dist.tree_bytes() / 1e6:.1f} MB "
          f"(built in {dist.build_seconds:.0f} simulated seconds)")

    print("\n== 2. insert-ethers: integrating 4 compute nodes ==")
    names = sim.integrate_all()
    for name in names:
        row = sim.db.node_by_name(name)
        print(f"  {row.name:<14} mac={row.mac}  ip={row.ip}  "
              f"rack={row.rack} rank={row.rank}")
    print("dhcpd.conf generation:", f.dhcp.config_generation,
          "| PBS nodes:", ", ".join(f.pbs.nodes()))

    print("\n== 3. every node carries the full 162-package compute profile ==")
    node = sim.nodes[0]
    print(f"  {node.hostid}: {len(node.rpmdb)} packages, "
          f"kernel {node.kernel_version}, modules {node.loaded_modules}")

    print("\n== 4. the management primitive: reinstall (shoot-node + eKV) ==")
    proc = shoot_node(f, node)
    sim.env.run(until=node.wait_for_state(node.state.INSTALLING))
    ekv = EkvConsole(sim.hardware, node)
    sim.env.run(until=sim.env.now + 300)
    print("  eKV console excerpt:")
    for line in ekv.tail(4):
        print("   |", line)
    report = sim.env.run(until=proc)
    print(f"  reinstall finished in {report.minutes:.1f} minutes "
          f"(paper: 5-10 min; Table I 1-node point: 10.3)")
    print(f"  phases: " + ", ".join(
        f"{k}={v:.0f}s" for k, v in node.last_install_report.phase_seconds.items()
    ))

    print("\n== 5. hosts file derived from the database ==")
    print("\n".join("  " + l for l in f.hosts_file.splitlines()[:8]))


if __name__ == "__main__":
    main()
